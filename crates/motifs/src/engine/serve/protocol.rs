//! Message schemas of the `tnm serve` client ↔ server protocol.
//!
//! Every message is one [`tnm_graph::wire`] frame (same magic, version,
//! and length validation as the coordinator ↔ worker protocol); the
//! `kind` byte selects the schema. Serve kinds are versioned alongside
//! the worker protocol by partitioning the kind space: worker kinds
//! occupy `1..=4`, serve **requests** start at [`KIND_REQ_LOAD`] (16)
//! and serve **responses** at [`KIND_RESP_LOADED`] (32), so a frame can
//! never be interpreted under the wrong protocol.
//!
//! | kind | direction | payload |
//! |---|---|---|
//! | [`KIND_REQ_LOAD`] | client → server | graph name, node-id space, event block |
//! | [`KIND_REQ_APPEND`] | client → server | graph name + event block (time-monotone batch) |
//! | [`KIND_REQ_QUERY`] | client → server | graph name + a full [`Query`] + optional request flags |
//! | [`KIND_REQ_SUBSCRIBE`] | client → server | graph name + a stream-eligible [`EnumConfig`](crate::engine::EnumConfig) + optional request flags |
//! | [`KIND_REQ_STATS`] | client → server | empty |
//! | [`KIND_REQ_SHUTDOWN`] | client → server | empty: stop accepting, drain, exit |
//! | [`KIND_REQ_METRICS`] | client → server | empty |
//! | [`KIND_RESP_LOADED`] | server → client | echoed name + event/node totals |
//! | [`KIND_RESP_APPENDED`] | server → client | new event total + every subscription's live counts |
//! | [`KIND_RESP_QUERY`] | server → client | the [`QueryResponse`] + optional [`TraceReply`] section |
//! | [`KIND_RESP_SUBSCRIBED`] | server → client | subscription id + initial counts |
//! | [`KIND_RESP_STATS`] | server → client | [`ServerStats`] |
//! | [`KIND_RESP_BYE`] | server → client | empty: shutdown acknowledged |
//! | [`KIND_RESP_METRICS`] | server → client | the server's full [`tnm_obs::Snapshot`] |
//! | [`KIND_RESP_ERR`] | server → client | a display string; the connection stays usable |
//!
//! Configurations and signatures reuse the worker protocol's codecs
//! (`put_config`/`get_config`), so the two protocols cannot drift on
//! how an [`EnumConfig`](crate::engine::EnumConfig) travels; count tables are written in sorted
//! signature order so identical tables are byte-identical. Every
//! decoder ends with [`WireReader::finish`], making trailing bytes an
//! error rather than slack.
//!
//! ## Versioned optional sections
//!
//! Three message schemas carry a trailing **length-prefixed optional
//! section** after their fixed legacy prefix, following the same
//! pattern as the worker protocol's trace/span sections:
//!
//! * Query and Subscribe **requests** may end with a request-flags
//!   section (one `u32` bitset; bit 0 = [`REQ_FLAG_TRACE`]). Absent
//!   flags read as 0, so legacy requests are untraced.
//! * A Query (or Subscribe) **response** to a traced request ends with
//!   a [`TraceReply`] section: the request's stitched span tree plus
//!   the server-metrics delta it caused.
//! * [`ServerStats`] payloads append a second optional section after
//!   the metrics snapshot: the slow-query table and flight-recorder
//!   ring, written only when non-empty.
//!
//! Every section length prefix is validated against its contents, so
//! truncation anywhere errors instead of decoding short.

use crate::count::MotifCounts;
use crate::engine::distributed::protocol::{get_config, get_signature, put_config, put_signature};
use crate::engine::query::{Query, QueryInstance, QueryResponse};
use crate::engine::report::{EngineReport, Estimate};
use crate::engine::EngineKind;
use std::collections::HashMap;
use tnm_graph::wire::{WireError, WireReader, WireWriter};

/// Request: load a graph into the registry under a name.
pub(crate) const KIND_REQ_LOAD: u8 = 16;
/// Request: append a time-monotone event batch to a loaded graph.
pub(crate) const KIND_REQ_APPEND: u8 = 17;
/// Request: run a [`Query`] against a loaded graph.
pub(crate) const KIND_REQ_QUERY: u8 = 18;
/// Request: register an incremental subscription on a loaded graph.
pub(crate) const KIND_REQ_SUBSCRIBE: u8 = 19;
/// Request: server statistics.
pub(crate) const KIND_REQ_STATS: u8 = 20;
/// Request: orderly server shutdown.
pub(crate) const KIND_REQ_SHUTDOWN: u8 = 21;
/// Request: the server's full metrics snapshot (Prometheus-renderable).
pub(crate) const KIND_REQ_METRICS: u8 = 22;

/// Response to [`KIND_REQ_LOAD`].
pub(crate) const KIND_RESP_LOADED: u8 = 32;
/// Response to [`KIND_REQ_APPEND`].
pub(crate) const KIND_RESP_APPENDED: u8 = 33;
/// Response to [`KIND_REQ_QUERY`].
pub(crate) const KIND_RESP_QUERY: u8 = 34;
/// Response to [`KIND_REQ_SUBSCRIBE`].
pub(crate) const KIND_RESP_SUBSCRIBED: u8 = 35;
/// Response to [`KIND_REQ_STATS`].
pub(crate) const KIND_RESP_STATS: u8 = 36;
/// Response to [`KIND_REQ_SHUTDOWN`].
pub(crate) const KIND_RESP_BYE: u8 = 37;
/// Response to [`KIND_REQ_METRICS`].
pub(crate) const KIND_RESP_METRICS: u8 = 38;
/// Any request the server understood but could not serve; the payload
/// is a human-readable reason and the connection stays open.
pub(crate) const KIND_RESP_ERR: u8 = 63;

/// Request flag (bit 0): trace this request. The server runs it under a
/// fresh [`tnm_obs::TraceCtx`] and appends a [`TraceReply`] section to
/// the response.
pub(crate) const REQ_FLAG_TRACE: u32 = 1;

/// The telemetry a traced request ships back alongside its response:
/// the request's complete span tree (serve root, engine phases, and —
/// for distributed runs — spans stitched back from worker processes)
/// plus the delta of the server's metrics registry over the request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReply {
    /// Every span recorded under the request's trace id. All spans
    /// share one `trace_id`; parent ids resolve within the tree or are
    /// 0 (the request root).
    pub spans: Vec<tnm_obs::SpanRecord>,
    /// Server-registry delta attributable to this request (latency
    /// histogram observation, `serve.queries` increment, ...).
    pub metrics: tnm_obs::Snapshot,
}

/// One completed query in the server's slow-query table or flight
/// recorder (see [`ServerStats::slow`] / [`ServerStats::flight`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// Query kind: `count`, `report`, `enumerate`, or `batch`.
    pub kind: String,
    /// Registry name the query ran against.
    pub graph: String,
    /// Wall-clock latency of the run.
    pub latency_ns: u64,
    /// The request's trace id (0 when the client did not ask for a
    /// trace).
    pub trace_id: u64,
    /// Completion time, milliseconds since the Unix epoch.
    pub at_unix_ms: u64,
    /// The request's span tree — retained for slow-table entries of
    /// traced queries, empty for flight-recorder entries and untraced
    /// queries.
    pub spans: Vec<tnm_obs::SpanRecord>,
}

/// Writes the optional request-flags section. Zero flags write nothing,
/// keeping untraced requests byte-identical to the legacy encoding.
pub(crate) fn put_request_flags(w: &mut WireWriter, flags: u32) {
    if flags != 0 {
        let mut section = WireWriter::new();
        section.put_u32(flags);
        w.put_bytes(&section.into_bytes());
    }
}

/// Reads the optional request-flags section; an absent section (a
/// legacy client) reads as 0.
pub(crate) fn get_request_flags(r: &mut WireReader<'_>) -> Result<u32, WireError> {
    if r.remaining() == 0 {
        return Ok(0);
    }
    let section = r.bytes()?;
    let mut sr = WireReader::new(section);
    let flags = sr.u32()?;
    sr.finish()?;
    Ok(flags)
}

/// Appends the optional [`TraceReply`] section to an open response
/// writer (absent when the request was untraced).
pub(crate) fn put_trace_section(w: &mut WireWriter, trace: Option<&TraceReply>) {
    if let Some(t) = trace {
        let mut section = WireWriter::new();
        tnm_graph::wire::put_span_records(&mut section, &t.spans);
        tnm_graph::wire::put_obs_snapshot(&mut section, &t.metrics);
        w.put_bytes(&section.into_bytes());
    }
}

/// Reads the optional [`TraceReply`] section (inverse of
/// [`put_trace_section`]).
pub(crate) fn get_trace_section(r: &mut WireReader<'_>) -> Result<Option<TraceReply>, WireError> {
    if r.remaining() == 0 {
        return Ok(None);
    }
    let section = r.bytes()?;
    let mut sr = WireReader::new(section);
    let spans = tnm_graph::wire::get_span_records(&mut sr)?;
    let metrics = tnm_graph::wire::get_obs_snapshot(&mut sr)?;
    sr.finish()?;
    Ok(Some(TraceReply { spans, metrics }))
}

fn put_query_log(w: &mut WireWriter, entries: &[QueryLogEntry]) {
    w.put_u32(entries.len() as u32);
    for e in entries {
        w.put_str(&e.kind);
        w.put_str(&e.graph);
        w.put_u64(e.latency_ns);
        w.put_u64(e.trace_id);
        w.put_u64(e.at_unix_ms);
        tnm_graph::wire::put_span_records(w, &e.spans);
    }
}

fn get_query_log(r: &mut WireReader<'_>) -> Result<Vec<QueryLogEntry>, WireError> {
    let n = r.u32()?;
    let mut entries = Vec::with_capacity(n.min(1 << 16) as usize);
    for _ in 0..n {
        entries.push(QueryLogEntry {
            kind: r.str()?.to_string(),
            graph: r.str()?.to_string(),
            latency_ns: r.u64()?,
            trace_id: r.u64()?,
            at_unix_ms: r.u64()?,
            spans: tnm_graph::wire::get_span_records(r)?,
        });
    }
    Ok(entries)
}

/// Acknowledgement of an append: the graph's new size plus the live
/// counts of every subscription on it, already updated incrementally.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendAck {
    /// Events in the graph after the append.
    pub total_events: u64,
    /// `(subscription id, live counts)` for every subscription on the
    /// graph, in id order.
    pub subscriptions: Vec<(u32, MotifCounts)>,
}

/// One registry entry in a [`ServerStats`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStat {
    /// Registry name.
    pub name: String,
    /// Events currently in the graph.
    pub events: u64,
    /// Node-id space.
    pub nodes: u32,
    /// Registered incremental subscriptions.
    pub subscriptions: u32,
}

/// Server-wide counters plus the registry listing.
///
/// ## Wire versioning
///
/// The legacy fields (`queries`, `appends`, `graphs`) form a fixed
/// prefix of the [`KIND_RESP_STATS`] payload. Everything newer travels
/// in trailing **length-prefixed optional sections**, oldest first: the
/// [`obs`](Self::obs) metrics snapshot, then the query log
/// ([`slow`](Self::slow) + [`flight`](Self::flight), written only when
/// either is non-empty). A decoder that only knows the legacy fields
/// can skip each section as an opaque byte run, and the current decoder
/// treats absent sections (a legacy server's payload) as empty. Each
/// section's length prefix is validated against its contents, so
/// truncation anywhere still errors instead of decoding short.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Queries served since start.
    pub queries: u64,
    /// Events appended since start (across all graphs).
    pub appends: u64,
    /// Loaded graphs, in name order.
    pub graphs: Vec<GraphStat>,
    /// The server's metrics snapshot: `serve.*` request counters and
    /// per-query-kind latency histograms. Empty when the payload came
    /// from a legacy server without the optional section.
    pub obs: tnm_obs::Snapshot,
    /// The worst-latency queries since start, latency-descending, at
    /// most [`ServeOptions::slow_queries`](super::ServeOptions)
    /// entries. Traced entries keep their span tree.
    pub slow: Vec<QueryLogEntry>,
    /// Flight recorder: the last
    /// [`ServeOptions::flight_recorder`](super::ServeOptions) completed
    /// queries, oldest first, without span trees.
    pub flight: Vec<QueryLogEntry>,
}

/// Maps an engine name that travelled the wire back to the `'static`
/// str [`EngineReport::engine`] requires. Only names the engines
/// actually report can appear; anything else is a protocol violation.
fn static_engine_name(name: &str) -> Result<&'static str, WireError> {
    for known in
        ["backtrack", "windowed", "parallel", "stream", "sharded", "distributed", "sampling"]
    {
        if name == known {
            return Ok(known);
        }
    }
    Err(WireError::Malformed(format!("unknown engine name `{name}` in report")))
}

pub(crate) fn put_counts(w: &mut WireWriter, counts: &MotifCounts) {
    let mut rows: Vec<_> = counts.iter().collect();
    rows.sort_unstable();
    w.put_u32(rows.len() as u32);
    for (sig, n) in rows {
        put_signature(w, &sig);
        w.put_u64(n);
    }
}

pub(crate) fn get_counts(r: &mut WireReader<'_>) -> Result<MotifCounts, WireError> {
    let rows = r.u32()?;
    let mut counts = MotifCounts::new();
    for _ in 0..rows {
        let sig = get_signature(r)?;
        counts.add(sig, r.u64()?);
    }
    Ok(counts)
}

fn put_f64(w: &mut WireWriter, v: f64) {
    w.put_u64(v.to_bits());
}

fn get_f64(r: &mut WireReader<'_>) -> Result<f64, WireError> {
    Ok(f64::from_bits(r.u64()?))
}

const ENGINE_TAG_BACKTRACK: u8 = 0;
const ENGINE_TAG_WINDOWED: u8 = 1;
const ENGINE_TAG_PARALLEL: u8 = 2;
const ENGINE_TAG_STREAM: u8 = 3;
const ENGINE_TAG_SHARDED: u8 = 4;
const ENGINE_TAG_DISTRIBUTED: u8 = 5;
const ENGINE_TAG_SAMPLING: u8 = 6;
const ENGINE_TAG_AUTO: u8 = 7;

fn put_engine(w: &mut WireWriter, kind: EngineKind) {
    match kind {
        EngineKind::Backtrack => w.put_u8(ENGINE_TAG_BACKTRACK),
        EngineKind::Windowed => w.put_u8(ENGINE_TAG_WINDOWED),
        EngineKind::Parallel => w.put_u8(ENGINE_TAG_PARALLEL),
        EngineKind::Stream => w.put_u8(ENGINE_TAG_STREAM),
        EngineKind::Sharded { shard_events, max_resident_shards } => {
            w.put_u8(ENGINE_TAG_SHARDED);
            w.put_u64(shard_events as u64);
            w.put_u64(max_resident_shards as u64);
        }
        EngineKind::Distributed { workers, shard_events } => {
            w.put_u8(ENGINE_TAG_DISTRIBUTED);
            w.put_u64(workers as u64);
            w.put_u64(shard_events as u64);
        }
        EngineKind::Sampling { samples, seed } => {
            w.put_u8(ENGINE_TAG_SAMPLING);
            w.put_u32(samples);
            w.put_u64(seed);
        }
        EngineKind::Auto => w.put_u8(ENGINE_TAG_AUTO),
    }
}

fn get_engine(r: &mut WireReader<'_>) -> Result<EngineKind, WireError> {
    Ok(match r.u8()? {
        ENGINE_TAG_BACKTRACK => EngineKind::Backtrack,
        ENGINE_TAG_WINDOWED => EngineKind::Windowed,
        ENGINE_TAG_PARALLEL => EngineKind::Parallel,
        ENGINE_TAG_STREAM => EngineKind::Stream,
        ENGINE_TAG_SHARDED => EngineKind::Sharded {
            shard_events: r.u64()? as usize,
            max_resident_shards: r.u64()? as usize,
        },
        ENGINE_TAG_DISTRIBUTED => {
            EngineKind::Distributed { workers: r.u64()? as usize, shard_events: r.u64()? as usize }
        }
        ENGINE_TAG_SAMPLING => EngineKind::Sampling { samples: r.u32()?, seed: r.u64()? },
        ENGINE_TAG_AUTO => EngineKind::Auto,
        other => return Err(WireError::Malformed(format!("unknown engine tag {other}"))),
    })
}

const QUERY_TAG_COUNT: u8 = 1;
const QUERY_TAG_REPORT: u8 = 2;
const QUERY_TAG_ENUMERATE: u8 = 3;
const QUERY_TAG_BATCH: u8 = 4;

/// Encodes a [`Query`] into an open writer (the request frame also
/// carries the graph name ahead of it).
pub(crate) fn put_query(w: &mut WireWriter, query: &Query) {
    match query {
        Query::Count { cfg, engine, threads } => {
            w.put_u8(QUERY_TAG_COUNT);
            put_engine(w, *engine);
            w.put_u32(*threads as u32);
            put_config(w, cfg);
        }
        Query::Report { cfg, engine, threads } => {
            w.put_u8(QUERY_TAG_REPORT);
            put_engine(w, *engine);
            w.put_u32(*threads as u32);
            put_config(w, cfg);
        }
        Query::Enumerate { cfg, engine, threads, limit } => {
            w.put_u8(QUERY_TAG_ENUMERATE);
            put_engine(w, *engine);
            w.put_u32(*threads as u32);
            w.put_u64(*limit as u64);
            put_config(w, cfg);
        }
        Query::Batch { cfgs, engine, threads } => {
            w.put_u8(QUERY_TAG_BATCH);
            put_engine(w, *engine);
            w.put_u32(*threads as u32);
            w.put_u32(cfgs.len() as u32);
            for cfg in cfgs {
                put_config(w, cfg);
            }
        }
    }
}

/// Decodes a [`Query`] (inverse of [`put_query`]).
pub(crate) fn get_query(r: &mut WireReader<'_>) -> Result<Query, WireError> {
    let tag = r.u8()?;
    let engine = get_engine(r)?;
    let threads = r.u32()? as usize;
    Ok(match tag {
        QUERY_TAG_COUNT => Query::Count { cfg: get_config(r)?, engine, threads },
        QUERY_TAG_REPORT => Query::Report { cfg: get_config(r)?, engine, threads },
        QUERY_TAG_ENUMERATE => {
            let limit = r.u64()? as usize;
            Query::Enumerate { cfg: get_config(r)?, engine, threads, limit }
        }
        QUERY_TAG_BATCH => {
            let n = r.u32()? as usize;
            let mut cfgs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                cfgs.push(get_config(r)?);
            }
            Query::Batch { cfgs, engine, threads }
        }
        other => return Err(WireError::Malformed(format!("unknown query tag {other}"))),
    })
}

const RESP_TAG_COUNTS: u8 = 1;
const RESP_TAG_REPORT: u8 = 2;
const RESP_TAG_INSTANCES: u8 = 3;
const RESP_TAG_BATCH: u8 = 4;

/// Encodes a [`QueryResponse`] body into an open writer (the
/// [`KIND_RESP_QUERY`] payload may append a [`TraceReply`] section
/// after it).
fn put_response(w: &mut WireWriter, resp: &QueryResponse) {
    match resp {
        QueryResponse::Counts(counts) => {
            w.put_u8(RESP_TAG_COUNTS);
            put_counts(w, counts);
        }
        QueryResponse::Report(report) => {
            w.put_u8(RESP_TAG_REPORT);
            w.put_str(report.engine);
            w.put_bool(report.exact);
            match report.samples {
                Some(s) => {
                    w.put_bool(true);
                    w.put_u64(s as u64);
                }
                None => w.put_bool(false),
            }
            put_counts(w, &report.counts);
            let mut rows: Vec<_> = report.iter().collect();
            rows.sort_unstable_by_key(|(sig, _)| *sig);
            w.put_u32(rows.len() as u32);
            for (sig, est) in rows {
                put_signature(w, &sig);
                put_f64(w, est.point);
                put_f64(w, est.half_width);
            }
            put_f64(w, report.total.point);
            put_f64(w, report.total.half_width);
        }
        QueryResponse::Instances { total, instances, truncated } => {
            w.put_u8(RESP_TAG_INSTANCES);
            w.put_u64(*total);
            w.put_bool(*truncated);
            w.put_u32(instances.len() as u32);
            for inst in instances {
                put_signature(w, &inst.signature);
                w.put_u8(inst.events.len() as u8);
                for &e in &inst.events {
                    w.put_u32(e);
                }
            }
        }
        QueryResponse::Batch(tables) => {
            w.put_u8(RESP_TAG_BATCH);
            w.put_u32(tables.len() as u32);
            for t in tables {
                put_counts(w, t);
            }
        }
    }
}

/// Encodes a [`KIND_RESP_QUERY`] payload: the response body plus, for
/// traced requests, the trailing [`TraceReply`] section.
pub(crate) fn encode_query_reply(resp: &QueryResponse, trace: Option<&TraceReply>) -> Vec<u8> {
    let mut w = WireWriter::new();
    put_response(&mut w, resp);
    put_trace_section(&mut w, trace);
    w.into_bytes()
}

/// Encodes a [`KIND_RESP_QUERY`] payload without a trace section.
#[cfg(test)]
pub(crate) fn encode_response(resp: &QueryResponse) -> Vec<u8> {
    encode_query_reply(resp, None)
}

/// Decodes a [`KIND_RESP_QUERY`] payload, dropping any trace section.
pub(crate) fn decode_response(payload: &[u8]) -> Result<QueryResponse, WireError> {
    Ok(decode_query_reply(payload)?.0)
}

/// Decodes a [`KIND_RESP_QUERY`] payload together with its optional
/// [`TraceReply`] section (absent for untraced requests and legacy
/// servers).
pub(crate) fn decode_query_reply(
    payload: &[u8],
) -> Result<(QueryResponse, Option<TraceReply>), WireError> {
    let mut r = WireReader::new(payload);
    let resp = get_response(&mut r)?;
    let trace = get_trace_section(&mut r)?;
    r.finish()?;
    Ok((resp, trace))
}

/// Decodes a [`QueryResponse`] body (inverse of [`put_response`]).
fn get_response(r: &mut WireReader<'_>) -> Result<QueryResponse, WireError> {
    let resp = match r.u8()? {
        RESP_TAG_COUNTS => QueryResponse::Counts(get_counts(r)?),
        RESP_TAG_REPORT => {
            let engine = static_engine_name(r.str()?)?;
            let exact = r.bool()?;
            let samples = if r.bool()? { Some(r.u64()? as usize) } else { None };
            let counts = get_counts(r)?;
            let n = r.u32()?;
            let mut estimates = HashMap::new();
            for _ in 0..n {
                let sig = get_signature(r)?;
                let point = get_f64(r)?;
                let half_width = get_f64(r)?;
                estimates.insert(sig, Estimate { point, half_width });
            }
            let total = Estimate { point: get_f64(r)?, half_width: get_f64(r)? };
            let report = if exact {
                // Reconstruct through the exact constructor so the
                // invariants (zero-width intervals, derived total)
                // cannot drift from what a local run produces.
                EngineReport::from_exact(engine, counts)
            } else {
                EngineReport::from_estimates(engine, samples.unwrap_or(0), estimates, total)
            };
            QueryResponse::Report(report)
        }
        RESP_TAG_INSTANCES => {
            let total = r.u64()?;
            let truncated = r.bool()?;
            let n = r.u32()?;
            let mut instances = Vec::with_capacity(n.min(1 << 20) as usize);
            for _ in 0..n {
                let signature = get_signature(r)?;
                let k = r.u8()? as usize;
                let mut events = Vec::with_capacity(k);
                for _ in 0..k {
                    events.push(r.u32()?);
                }
                instances.push(QueryInstance { signature, events });
            }
            QueryResponse::Instances { total, instances, truncated }
        }
        RESP_TAG_BATCH => {
            let n = r.u32()?;
            let mut tables = Vec::with_capacity(n.min(1 << 16) as usize);
            for _ in 0..n {
                tables.push(get_counts(r)?);
            }
            QueryResponse::Batch(tables)
        }
        other => return Err(WireError::Malformed(format!("unknown response tag {other}"))),
    };
    Ok(resp)
}

/// Encodes a [`KIND_RESP_APPENDED`] payload.
pub(crate) fn encode_append_ack(ack: &AppendAck) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(ack.total_events);
    w.put_u32(ack.subscriptions.len() as u32);
    for (id, counts) in &ack.subscriptions {
        w.put_u32(*id);
        put_counts(&mut w, counts);
    }
    w.into_bytes()
}

/// Decodes a [`KIND_RESP_APPENDED`] payload.
pub(crate) fn decode_append_ack(payload: &[u8]) -> Result<AppendAck, WireError> {
    let mut r = WireReader::new(payload);
    let total_events = r.u64()?;
    let n = r.u32()?;
    let mut subscriptions = Vec::with_capacity(n.min(1 << 16) as usize);
    for _ in 0..n {
        let id = r.u32()?;
        subscriptions.push((id, get_counts(&mut r)?));
    }
    r.finish()?;
    Ok(AppendAck { total_events, subscriptions })
}

/// Encodes a [`KIND_RESP_STATS`] payload: the legacy prefix followed
/// by the length-prefixed optional metrics section (see the
/// [`ServerStats`] versioning notes).
pub(crate) fn encode_stats(stats: &ServerStats) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(stats.queries);
    w.put_u64(stats.appends);
    w.put_u32(stats.graphs.len() as u32);
    for g in &stats.graphs {
        w.put_str(&g.name);
        w.put_u64(g.events);
        w.put_u32(g.nodes);
        w.put_u32(g.subscriptions);
    }
    let mut section = WireWriter::new();
    tnm_graph::wire::put_obs_snapshot(&mut section, &stats.obs);
    w.put_bytes(&section.into_bytes());
    // Second optional section — the query log — only when there is one,
    // so a log-less payload is byte-identical to the previous wire
    // version.
    if !stats.slow.is_empty() || !stats.flight.is_empty() {
        let mut section = WireWriter::new();
        put_query_log(&mut section, &stats.slow);
        put_query_log(&mut section, &stats.flight);
        w.put_bytes(&section.into_bytes());
    }
    w.into_bytes()
}

/// Decodes a [`KIND_RESP_STATS`] payload. A payload ending after the
/// legacy fields (a pre-metrics server) decodes with an empty
/// [`ServerStats::obs`]; a present section must parse exactly to its
/// declared length.
pub(crate) fn decode_stats(payload: &[u8]) -> Result<ServerStats, WireError> {
    let mut r = WireReader::new(payload);
    let queries = r.u64()?;
    let appends = r.u64()?;
    let n = r.u32()?;
    let mut graphs = Vec::with_capacity(n.min(1 << 16) as usize);
    for _ in 0..n {
        graphs.push(GraphStat {
            name: r.str()?.to_string(),
            events: r.u64()?,
            nodes: r.u32()?,
            subscriptions: r.u32()?,
        });
    }
    let obs = if r.remaining() > 0 {
        let section = r.bytes()?;
        let mut sr = WireReader::new(section);
        let snap = tnm_graph::wire::get_obs_snapshot(&mut sr)?;
        sr.finish()?;
        snap
    } else {
        Default::default()
    };
    let (slow, flight) = if r.remaining() > 0 {
        let section = r.bytes()?;
        let mut sr = WireReader::new(section);
        let slow = get_query_log(&mut sr)?;
        let flight = get_query_log(&mut sr)?;
        sr.finish()?;
        (slow, flight)
    } else {
        (Vec::new(), Vec::new())
    };
    r.finish()?;
    Ok(ServerStats { queries, appends, graphs, obs, slow, flight })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use crate::engine::EnumConfig;
    use crate::notation::sig;

    fn table(rows: &[(&str, u64)]) -> MotifCounts {
        let mut c = MotifCounts::new();
        for &(s, n) in rows {
            c.add(sig(s), n);
        }
        c
    }

    #[test]
    fn kind_spaces_do_not_collide_with_the_worker_protocol() {
        let serve_kinds = [
            KIND_REQ_LOAD,
            KIND_REQ_APPEND,
            KIND_REQ_QUERY,
            KIND_REQ_SUBSCRIBE,
            KIND_REQ_STATS,
            KIND_REQ_SHUTDOWN,
            KIND_REQ_METRICS,
            KIND_RESP_LOADED,
            KIND_RESP_APPENDED,
            KIND_RESP_QUERY,
            KIND_RESP_SUBSCRIBED,
            KIND_RESP_STATS,
            KIND_RESP_BYE,
            KIND_RESP_METRICS,
            KIND_RESP_ERR,
        ];
        for k in serve_kinds {
            assert!(k >= 16, "serve kinds start at 16; worker kinds own 1..=4");
        }
        let mut sorted = serve_kinds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), serve_kinds.len(), "serve kinds are distinct");
    }

    #[test]
    fn queries_roundtrip_over_every_engine_kind() {
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(3_000));
        let engines = [
            EngineKind::Backtrack,
            EngineKind::Windowed,
            EngineKind::Parallel,
            EngineKind::Stream,
            EngineKind::sharded(512, 2),
            EngineKind::distributed(3, 700),
            EngineKind::sampling(64, 42),
            EngineKind::Auto,
        ];
        for engine in engines {
            let queries = [
                Query::Count { cfg: cfg.clone(), engine, threads: 4 },
                Query::Report { cfg: cfg.clone(), engine, threads: 1 },
                Query::Enumerate { cfg: cfg.clone(), engine, threads: 2, limit: 100 },
                Query::Batch {
                    cfgs: vec![cfg.clone(), EnumConfig::for_signature(sig("011202"))],
                    engine,
                    threads: 8,
                },
            ];
            for q in queries {
                let mut w = WireWriter::new();
                put_query(&mut w, &q);
                let bytes = w.into_bytes();
                let mut r = WireReader::new(&bytes);
                assert_eq!(get_query(&mut r).unwrap(), q);
                r.finish().unwrap();
            }
        }
    }

    #[test]
    fn responses_roundtrip() {
        let counts = table(&[("010102", 7), ("011202", 123_456)]);
        let resp = QueryResponse::Counts(counts.clone());
        let QueryResponse::Counts(back) = decode_response(&encode_response(&resp)).unwrap() else {
            panic!("shape")
        };
        assert_eq!(back, counts);

        let report = EngineReport::from_exact("windowed", counts.clone());
        let QueryResponse::Report(back) =
            decode_response(&encode_response(&QueryResponse::Report(report.clone()))).unwrap()
        else {
            panic!("shape")
        };
        assert_eq!(back.engine, "windowed");
        assert!(back.exact);
        assert_eq!(back.counts, report.counts);
        assert_eq!(back.total, report.total);

        let mut estimates = HashMap::new();
        estimates.insert(sig("010102"), Estimate { point: 6.5, half_width: 1.25 });
        let approx = EngineReport::from_estimates(
            "sampling",
            50,
            estimates,
            Estimate { point: 6.5, half_width: 1.25 },
        );
        let QueryResponse::Report(back) =
            decode_response(&encode_response(&QueryResponse::Report(approx.clone()))).unwrap()
        else {
            panic!("shape")
        };
        assert!(!back.exact);
        assert_eq!(back.samples, Some(50));
        assert_eq!(back.estimate(sig("010102")), approx.estimate(sig("010102")));
        assert_eq!(back.total, approx.total);

        let resp = QueryResponse::Instances {
            total: 9,
            truncated: true,
            instances: vec![
                QueryInstance { signature: sig("011202"), events: vec![0, 3, 5] },
                QueryInstance { signature: sig("010102"), events: vec![1, 2, 8] },
            ],
        };
        let QueryResponse::Instances { total, instances, truncated } =
            decode_response(&encode_response(&resp)).unwrap()
        else {
            panic!("shape")
        };
        assert_eq!((total, truncated), (9, true));
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].events, vec![0, 3, 5]);

        let resp = QueryResponse::Batch(vec![counts.clone(), MotifCounts::new()]);
        let QueryResponse::Batch(tables) = decode_response(&encode_response(&resp)).unwrap() else {
            panic!("shape")
        };
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0], counts);
        assert!(tables[1].is_empty());
    }

    #[test]
    fn acks_and_stats_roundtrip() {
        let ack = AppendAck {
            total_events: 1234,
            subscriptions: vec![(0, table(&[("01", 5)])), (3, MotifCounts::new())],
        };
        assert_eq!(decode_append_ack(&encode_append_ack(&ack)).unwrap(), ack);

        let stats = ServerStats {
            queries: 42,
            appends: 9000,
            graphs: vec![GraphStat {
                name: "CollegeMsg".into(),
                events: 59_835,
                nodes: 1_899,
                subscriptions: 2,
            }],
            obs: {
                let r = tnm_obs::Registry::new();
                r.counter("serve.queries").add(42);
                r.histogram("serve.query.count_ns").record(150_000);
                r.histogram("serve.query.count_ns").record(90_000);
                r.snapshot()
            },
            ..Default::default()
        };
        assert_eq!(decode_stats(&encode_stats(&stats)).unwrap(), stats);
    }

    /// The versioning contract both ways: a legacy payload (no trailing
    /// section) decodes with an empty snapshot, and a legacy decoder
    /// reading only the fixed prefix can skip the section as one
    /// length-prefixed byte run.
    #[test]
    fn stats_optional_section_is_versioned() {
        // Legacy payload: just the fixed prefix, no section.
        let mut w = WireWriter::new();
        w.put_u64(7);
        w.put_u64(11);
        w.put_u32(0);
        let decoded = decode_stats(&w.into_bytes()).unwrap();
        assert_eq!((decoded.queries, decoded.appends), (7, 11));
        assert!(decoded.obs.is_empty(), "absent section reads as empty metrics");

        // Current payload under a legacy reader: fixed prefix, then one
        // opaque `bytes()` skip, then a clean finish.
        let stats = ServerStats {
            queries: 3,
            appends: 0,
            graphs: vec![],
            obs: {
                let r = tnm_obs::Registry::new();
                r.gauge("shard.resident_events").set(512);
                r.snapshot()
            },
            ..Default::default()
        };
        let payload = encode_stats(&stats);
        let mut r = WireReader::new(&payload);
        assert_eq!(r.u64().unwrap(), 3);
        assert_eq!(r.u64().unwrap(), 0);
        assert_eq!(r.u32().unwrap(), 0);
        let _opaque = r.bytes().unwrap();
        r.finish().unwrap();
    }

    /// Truncation anywhere in a stats payload — including inside the
    /// optional section and its length prefix — errors rather than
    /// decoding short.
    #[test]
    fn stats_truncation_is_rejected_at_every_prefix() {
        let stats = ServerStats {
            queries: 1,
            appends: 2,
            graphs: vec![GraphStat { name: "g".into(), events: 3, nodes: 4, subscriptions: 5 }],
            obs: {
                let r = tnm_obs::Registry::new();
                r.counter("serve.queries").add(1);
                r.histogram("serve.query.batch_ns").record(4096);
                r.snapshot()
            },
            ..Default::default()
        };
        let payload = encode_stats(&stats);
        // The one legal short form is the exact legacy prefix (handled
        // above); every other cut must error.
        let legacy_len = 8 + 8 + 4 + (4 + 1) + 8 + 4 + 4;
        for cut in 0..payload.len() {
            if cut == legacy_len {
                continue;
            }
            assert!(decode_stats(&payload[..cut]).is_err(), "stats prefix {cut} accepted");
        }
        assert!(decode_stats(&payload[..legacy_len]).is_ok());
    }

    #[test]
    fn decoders_reject_corruption() {
        let mut w = WireWriter::new();
        put_query(
            &mut w,
            &Query::Count {
                cfg: EnumConfig::new(3, 3).with_timing(Timing::only_w(10)),
                engine: EngineKind::sampling(8, 7),
                threads: 2,
            },
        );
        let payload = w.into_bytes();
        for cut in 0..payload.len() {
            let mut r = WireReader::new(&payload[..cut]);
            assert!(
                get_query(&mut r).and_then(|_| r.finish()).is_err(),
                "query prefix {cut} accepted"
            );
        }
        let mut padded = payload.clone();
        padded.push(0);
        let mut r = WireReader::new(&padded);
        assert!(matches!(
            get_query(&mut r).and_then(|_| r.finish()),
            Err(WireError::TrailingBytes { .. })
        ));

        let resp = encode_response(&QueryResponse::Counts(table(&[("0110", 3)])));
        for cut in 0..resp.len() {
            assert!(decode_response(&resp[..cut]).is_err(), "response prefix {cut} accepted");
        }
        assert!(matches!(decode_response(&[99]), Err(WireError::Malformed(_))));

        // A report naming an engine no engine reports cannot decode
        // (the &'static str mapping is a closed set).
        let mut w = WireWriter::new();
        w.put_u8(RESP_TAG_REPORT);
        w.put_str("definitely-not-an-engine");
        assert!(matches!(decode_response(&w.into_bytes()), Err(WireError::Malformed(_))));
    }

    fn span(name: &str, span_id: u64, parent_id: u64) -> tnm_obs::SpanRecord {
        tnm_obs::SpanRecord {
            name: name.into(),
            args: vec![("shard".into(), "3".into())],
            start_ns: 10,
            dur_ns: 1_000,
            tid: 1,
            depth: 0,
            trace_id: 0xABCD,
            span_id,
            parent_id,
        }
    }

    /// The request-flags section: absent reads as 0, present roundtrips,
    /// and truncation anywhere inside it errors — the only legal short
    /// form is the exact flag-less encoding.
    #[test]
    fn request_flags_are_versioned_and_reject_truncation() {
        let query = Query::Count {
            cfg: EnumConfig::new(3, 3).with_timing(Timing::only_w(10)),
            engine: EngineKind::Backtrack,
            threads: 2,
        };
        let mut w = WireWriter::new();
        put_query(&mut w, &query);
        put_request_flags(&mut w, 0);
        let base = w.into_bytes();
        let mut r = WireReader::new(&base);
        get_query(&mut r).unwrap();
        assert_eq!(get_request_flags(&mut r).unwrap(), 0, "absent flags read as 0");
        r.finish().unwrap();

        let mut w = WireWriter::new();
        put_query(&mut w, &query);
        put_request_flags(&mut w, REQ_FLAG_TRACE);
        let payload = w.into_bytes();
        assert!(payload.len() > base.len(), "nonzero flags write a section");
        for cut in 0..=payload.len() {
            let mut r = WireReader::new(&payload[..cut]);
            let parsed = get_query(&mut r)
                .and_then(|q| Ok((q, get_request_flags(&mut r)?)))
                .and_then(|out| r.finish().map(|()| out));
            if cut == base.len() {
                assert_eq!(parsed.unwrap().1, 0, "flag-less boundary decodes untraced");
            } else if cut == payload.len() {
                assert_eq!(parsed.unwrap(), (query.clone(), REQ_FLAG_TRACE));
            } else {
                assert!(parsed.is_err(), "flags prefix {cut} accepted");
            }
        }
    }

    /// A traced query reply roundtrips its span tree + metrics delta;
    /// an untraced reply stays byte-identical to the legacy encoding;
    /// truncation inside the trace section is rejected at every prefix.
    #[test]
    fn query_reply_trace_section_is_versioned_and_rejects_truncation() {
        let resp = QueryResponse::Counts(table(&[("010102", 7)]));
        let trace = TraceReply {
            spans: vec![span("serve.query", 1, 0), span("query.count", 2, 1)],
            metrics: {
                let r = tnm_obs::Registry::new();
                r.counter("serve.queries").incr();
                r.histogram("serve.query.count_ns").record(52_000);
                r.snapshot()
            },
        };
        let payload = encode_query_reply(&resp, Some(&trace));
        let (back, back_trace) = decode_query_reply(&payload).unwrap();
        let QueryResponse::Counts(counts) = back else { panic!("shape") };
        assert_eq!(counts, table(&[("010102", 7)]));
        assert_eq!(back_trace.as_ref(), Some(&trace));
        // The legacy decoder skips the section.
        let QueryResponse::Counts(counts) = decode_response(&payload).unwrap() else {
            panic!("shape")
        };
        assert_eq!(counts, table(&[("010102", 7)]));

        let bare = encode_query_reply(&resp, None);
        assert!(decode_query_reply(&bare).unwrap().1.is_none());
        for cut in 0..payload.len() {
            if cut == bare.len() {
                assert_eq!(decode_query_reply(&payload[..cut]).unwrap().1, None);
                continue;
            }
            assert!(decode_query_reply(&payload[..cut]).is_err(), "reply prefix {cut} accepted");
        }
    }

    /// The stats query-log section: roundtrips slow + flight tables,
    /// absent section reads as empty, and the only legal short forms
    /// are the legacy prefix and the log-less boundary.
    #[test]
    fn stats_query_log_section_is_versioned_and_rejects_truncation() {
        let entry = QueryLogEntry {
            kind: "count".into(),
            graph: "CollegeMsg".into(),
            latency_ns: 1_234_567,
            trace_id: 0xABCD,
            at_unix_ms: 1_700_000_000_123,
            spans: vec![span("serve.query", 1, 0)],
        };
        let mut flight = entry.clone();
        flight.spans = Vec::new();
        flight.trace_id = 0;
        let stats = ServerStats {
            queries: 9,
            appends: 0,
            graphs: vec![],
            obs: {
                let r = tnm_obs::Registry::new();
                r.counter("serve.queries").add(9);
                r.snapshot()
            },
            slow: vec![entry],
            flight: vec![flight],
        };
        let payload = encode_stats(&stats);
        assert_eq!(decode_stats(&payload).unwrap(), stats);

        let logless = encode_stats(&ServerStats { slow: vec![], flight: vec![], ..stats.clone() });
        assert!(payload.len() > logless.len(), "a non-empty log writes a second section");
        let legacy_len = 8 + 8 + 4;
        for cut in 0..payload.len() {
            if cut == legacy_len || cut == logless.len() {
                let short = decode_stats(&payload[..cut]).unwrap();
                assert!(short.slow.is_empty() && short.flight.is_empty());
                continue;
            }
            assert!(decode_stats(&payload[..cut]).is_err(), "stats prefix {cut} accepted");
        }
    }
}
