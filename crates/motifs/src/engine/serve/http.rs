//! The daemon's HTTP scrape surface: a minimal std-only HTTP/1.1
//! responder for pull-based observability, bound on its own port
//! ([`ServeOptions::http_port`](super::ServeOptions)) so scrapers never
//! speak the framed wire protocol and wire clients never share a
//! listener with scrapers.
//!
//! | path | payload |
//! |---|---|
//! | `GET /metrics` | the merged metrics snapshot (server `serve.*` registry + process-global engine registry) as Prometheus text |
//! | `GET /healthz` | `ok` — liveness only, no locks taken |
//! | `GET /timeseries` | the sampler's ring of windowed metric deltas as JSON ([`tnm_obs::TimeSeries::to_json`]) |
//!
//! One request per connection (`Connection: close`): scrape cadences
//! are seconds apart, so keep-alive buys nothing and connection state
//! machines cost code. The accept loop polls non-blocking with a 50 ms
//! sleep, checking the server's shutdown flag between polls — the
//! thread exits within one poll of daemon shutdown, without needing a
//! wake-up connection.

use super::ServerState;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Largest accepted request head; a scrape request line is tiny, so
/// anything bigger is garbage.
const MAX_HEAD: usize = 8 * 1024;

/// Serves `listener` on a background thread until the server's
/// shutdown flag is set.
pub(super) fn spawn(listener: TcpListener, state: Arc<ServerState>) -> thread::JoinHandle<()> {
    thread::spawn(move || serve_http(listener, &state))
}

fn serve_http(listener: TcpListener, state: &ServerState) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(stream, state);
            }
            Err(_) => thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Answers one request and closes the connection. Any I/O or parse
/// failure just drops the connection — a scraper retries on its next
/// cadence, and a bad peer must not be able to wedge the thread (reads
/// are bounded by a timeout and [`MAX_HEAD`]).
fn handle(mut stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return Ok(());
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".into())
    } else {
        match path {
            "/metrics" => {
                ("200 OK", "text/plain; version=0.0.4", state.merged_snapshot().to_prometheus())
            }
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".into()),
            "/timeseries" => (
                "200 OK",
                "application/json",
                state.timeseries.lock().expect("timeseries lock").to_json(),
            ),
            _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".into()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
