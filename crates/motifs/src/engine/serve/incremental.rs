//! Incremental Paranjape-shape counting under event appends.
//!
//! A serve-side subscription keeps a stream-eligible configuration's
//! counts live as events arrive, paying **O(window occupancy + batch)**
//! per append instead of recounting the grown graph. The algorithm is a
//! window-suffix identity over the [`StreamEngine`] spectrum:
//!
//! > counts(G ∪ B) = counts(G) + counts(S ∪ B) − counts(S)
//!
//! where `B` is the appended batch, `t₀ = min` batch time, and
//! `S = { e ∈ G : e.time ≥ t₀ − ΔW }` is the ΔW-suffix of the old
//! events. The identity holds because (a) every *new* instance contains
//! at least one batch event and spans at most ΔW, so all of its events
//! have time `≥ t₀ − ΔW` and the instance lies wholly inside `S ∪ B`;
//! (b) every *old* instance lies either wholly inside `S` (counted in
//! both suffix terms, cancelling) or outside `S ∪ B`'s new instances
//! (already in `counts(G)`); and (c) Paranjape counting is non-induced,
//! so an instance's membership depends only on the events it contains —
//! counting a sub-multiset never changes existing instances' verdicts.
//! The retained state is therefore just the accumulated spectrum plus
//! the ΔW tail of the event log — no per-pair/per-center/per-triangle
//! tables survive between appends, yet the result is **bit-identical**
//! to a from-scratch [`StreamEngine`] recount (pinned by the randomized
//! sweep below and by `tests/serve_loop.rs`).
//!
//! Appends must be time-monotone: each batch is sorted and starts at or
//! after the previous last event time. That is exactly what a live
//! stream delivers, and what makes the ΔW tail a sufficient retained
//! suffix.

use crate::count::MotifCounts;
use crate::engine::config::EnumConfig;
use crate::engine::stream::StreamEngine;
use std::fmt;
use tnm_graph::{Event, TemporalGraph, Time};

/// Live, incrementally-maintained counts for one stream-eligible
/// configuration (a serve-side *subscription*).
#[derive(Debug, Clone)]
pub struct IncrementalStream {
    cfg: EnumConfig,
    delta: Time,
    wants: (bool, bool, bool),
    /// Accumulated class spectrum (overshoots the config's node bounds
    /// and signature target exactly like a batch pass; projected on
    /// read).
    spectrum: MotifCounts,
    /// Every event with `time ≥ last_time − ΔW`, sorted — the sufficient
    /// suffix for the next append's before/after recount.
    tail: Vec<Event>,
    /// Node-id space covering every event seen so far.
    num_nodes: u32,
    /// Time of the last event seen (`None` while empty).
    last_time: Option<Time>,
    /// Total events folded in (initial graph + appends), for stats.
    events_seen: u64,
}

/// An append the subscription cannot fold in without breaking the
/// suffix identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendError {
    /// The batch is not sorted by `(time, src, dst, duration)`.
    Unsorted,
    /// The batch starts before the last event already counted.
    Regressing {
        /// First batch event time.
        batch_start: Time,
        /// Last counted event time.
        last_time: Time,
    },
    /// The batch contains a self-loop, which no motif model admits.
    SelfLoop,
}

impl fmt::Display for AppendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppendError::Unsorted => write!(f, "append batch is not time-sorted"),
            AppendError::Regressing { batch_start, last_time } => write!(
                f,
                "append batch starts at t={batch_start}, before the last counted event \
                 (t={last_time}); live appends must be time-monotone"
            ),
            AppendError::SelfLoop => write!(f, "append batch contains a self-loop event"),
        }
    }
}

impl std::error::Error for AppendError {}

/// Validates a batch's shape for [`IncrementalStream::append`] (and the
/// serve registry, which enforces the same rule before touching any
/// subscription): sorted, self-loop-free, and starting no earlier than
/// `last_time`.
pub(crate) fn check_batch(batch: &[Event], last_time: Option<Time>) -> Result<(), AppendError> {
    if batch.windows(2).any(|w| w[0] > w[1]) {
        return Err(AppendError::Unsorted);
    }
    if batch.iter().any(Event::is_self_loop) {
        return Err(AppendError::SelfLoop);
    }
    if let (Some(first), Some(last)) = (batch.first(), last_time) {
        if first.time < last {
            return Err(AppendError::Regressing { batch_start: first.time, last_time: last });
        }
    }
    Ok(())
}

impl IncrementalStream {
    /// Starts a subscription from a graph's current contents. Fails
    /// with the configuration's ineligibility reason when `cfg` is not
    /// in [`StreamEngine::eligible`] shape — only Paranjape δ-window
    /// jobs stream incrementally.
    pub fn new(graph: &TemporalGraph, cfg: &EnumConfig) -> Result<Self, String> {
        if !StreamEngine::eligible(cfg) {
            return Err(format!(
                "config is not stream-eligible (need ΔW only, non-induced, no restrictions, \
                 ≤ 3 events on ≤ 3 nodes): {cfg:?}"
            ));
        }
        let delta = cfg.timing.delta_w.expect("eligible config has ΔW");
        let wants = StreamEngine::class_wants(cfg);
        let spectrum = StreamEngine::spectrum(graph, delta, cfg.num_events, wants);
        let last_time = graph.last_time();
        let tail = match last_time {
            Some(last) => {
                let cutoff = last.saturating_sub(delta);
                let events = graph.events();
                let idx = events.partition_point(|e| e.time < cutoff);
                events[idx..].to_vec()
            }
            None => Vec::new(),
        };
        Ok(IncrementalStream {
            cfg: cfg.clone(),
            delta,
            wants,
            spectrum,
            tail,
            num_nodes: graph.num_nodes(),
            last_time,
            events_seen: graph.num_events() as u64,
        })
    }

    /// The subscription's configuration.
    pub fn config(&self) -> &EnumConfig {
        &self.cfg
    }

    /// Total events folded in so far (initial graph + appends).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Current counts — bit-identical to a from-scratch
    /// [`StreamEngine`] recount of all events folded in so far.
    pub fn counts(&self) -> MotifCounts {
        StreamEngine::project(&self.spectrum, &self.cfg)
    }

    /// Folds a time-monotone batch into the live counts in
    /// O(window occupancy + batch) via the suffix identity (module
    /// docs): recount the ΔW suffix with and without the batch and add
    /// the per-signature difference to the accumulated spectrum.
    pub fn append(&mut self, batch: &[Event]) -> Result<(), AppendError> {
        check_batch(batch, self.last_time)?;
        let Some(first) = batch.first() else { return Ok(()) };
        let cutoff = first.time.saturating_sub(self.delta);
        let idx = self.tail.partition_point(|e| e.time < cutoff);
        let suffix = &self.tail[idx..];

        // Merge the sorted suffix with the sorted batch; only events at
        // the exact boundary timestamp can interleave, but equal-time
        // runs must stay (src, dst, duration)-ordered for
        // `from_sorted_events`.
        let mut merged = Vec::with_capacity(suffix.len() + batch.len());
        let (mut i, mut j) = (0, 0);
        while i < suffix.len() && j < batch.len() {
            if suffix[i] <= batch[j] {
                merged.push(suffix[i]);
                i += 1;
            } else {
                merged.push(batch[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&suffix[i..]);
        merged.extend_from_slice(&batch[j..]);

        let max_node = batch.iter().map(|e| e.src.0.max(e.dst.0) + 1).max().unwrap_or(0);
        self.num_nodes = self.num_nodes.max(max_node);

        let before = TemporalGraph::from_sorted_events(suffix.to_vec(), self.num_nodes);
        let after = TemporalGraph::from_sorted_events(merged.clone(), self.num_nodes);
        let old = StreamEngine::spectrum(&before, self.delta, self.cfg.num_events, self.wants);
        let new = StreamEngine::spectrum(&after, self.delta, self.cfg.num_events, self.wants);
        for (sig, n) in new.iter() {
            let prior = old.get(sig);
            debug_assert!(n >= prior, "non-induced counting is monotone under appends");
            self.spectrum.add(sig, n - prior);
        }

        let new_last = merged.last().expect("batch is non-empty").time;
        let keep_from = new_last.saturating_sub(self.delta);
        let idx = merged.partition_point(|e| e.time < keep_from);
        merged.drain(..idx);
        self.tail = merged;
        self.last_time = Some(new_last);
        self.events_seen += batch.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use crate::engine::CountEngine;
    use crate::notation::sig;

    /// Deterministic LCG event stream with heavy timestamp ties (every
    /// time appears ~twice) on `nodes` nodes.
    fn lcg_events(seed: u64, nodes: u32, n: usize) -> Vec<Event> {
        let mut x = seed | 1;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((x >> 33) % nodes as u64) as u32;
            let v = (u + 1 + ((x >> 13) % (nodes as u64 - 2)) as u32) % nodes;
            out.push(Event::new(u, v, (i as i64) / 2));
        }
        out.sort_unstable();
        out
    }

    fn graph_of(events: &[Event], nodes: u32) -> TemporalGraph {
        TemporalGraph::from_sorted_events(events.to_vec(), nodes)
    }

    fn sweep_cfgs() -> Vec<EnumConfig> {
        vec![
            EnumConfig::new(3, 3).with_timing(Timing::only_w(40)),
            EnumConfig::new(3, 3).with_timing(Timing::only_w(0)),
            EnumConfig::new(3, 2).with_timing(Timing::only_w(25)),
            EnumConfig::new(2, 3).with_timing(Timing::only_w(12)),
            EnumConfig::new(1, 3).with_timing(Timing::only_w(7)),
            EnumConfig::for_signature(sig("010102")).with_timing(Timing::only_w(30)),
            EnumConfig::for_signature(sig("011202")).with_timing(Timing::only_w(30)),
            EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_w(18)),
        ]
    }

    /// The acceptance-criteria pin: after *any* sequence of appends
    /// (odd batch sizes, boundary timestamp ties included), counts are
    /// bit-identical to a from-scratch [`StreamEngine`] recount of the
    /// grown graph — across window widths, node bounds, and signature
    /// targets.
    #[test]
    fn appends_match_from_scratch_recount() {
        let nodes = 14u32;
        let events = lcg_events(0x5EED, nodes, 700);
        for cfg in sweep_cfgs() {
            for split in [0usize, 1, 350, 699] {
                let mut inc =
                    IncrementalStream::new(&graph_of(&events[..split], nodes), &cfg).unwrap();
                let mut at = split;
                for batch in [1usize, 7, 64, 3, 200, 1000] {
                    let hi = (at + batch).min(events.len());
                    inc.append(&events[at..hi]).unwrap();
                    at = hi;
                    let expect = StreamEngine.count(&graph_of(&events[..at], nodes), &cfg);
                    assert_eq!(
                        inc.counts(),
                        expect,
                        "cfg={cfg:?} split={split} grown to {at} events"
                    );
                    if at == events.len() {
                        break;
                    }
                }
                assert_eq!(inc.events_seen(), at as u64);
            }
        }
    }

    /// Appending from an empty graph is the pure-stream case; node ids
    /// unseen at subscription time must grow the id space.
    #[test]
    fn streams_from_empty_and_grows_node_space() {
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(50));
        let empty = TemporalGraph::from_sorted_events(Vec::new(), 0);
        let mut inc = IncrementalStream::new(&empty, &cfg).unwrap();
        inc.append(&[]).unwrap();
        assert!(inc.counts().is_empty());
        let events = lcg_events(9, 30, 300);
        for chunk in events.chunks(37) {
            inc.append(chunk).unwrap();
        }
        let expect = StreamEngine.count(&graph_of(&events, 30), &cfg);
        assert_eq!(inc.counts(), expect);
    }

    #[test]
    fn rejects_ineligible_configs_and_bad_batches() {
        let g = graph_of(&lcg_events(3, 8, 50), 8);
        let induced =
            EnumConfig::new(3, 3).with_timing(Timing::only_w(10)).with_static_induced(true);
        assert!(IncrementalStream::new(&g, &induced).is_err());
        let dc = EnumConfig::new(3, 3).with_timing(Timing::both(5, 10));
        assert!(IncrementalStream::new(&g, &dc).is_err());

        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(10));
        let mut inc = IncrementalStream::new(&g, &cfg).unwrap();
        let last = g.last_time().unwrap();
        assert_eq!(
            inc.append(&[Event::new(0, 1, last - 1)]),
            Err(AppendError::Regressing { batch_start: last - 1, last_time: last })
        );
        assert_eq!(
            inc.append(&[Event::new(0, 1, last + 5), Event::new(0, 1, last + 2)]),
            Err(AppendError::Unsorted)
        );
        assert_eq!(inc.append(&[Event::new(2, 2, last + 1)]), Err(AppendError::SelfLoop));
        // A batch starting exactly at the last time is fine (ties are
        // merged in (src, dst) order at the boundary).
        inc.append(&[Event::new(0, 1, last)]).unwrap();
    }
}
