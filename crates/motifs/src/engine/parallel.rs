//! [`ParallelEngine`] — work-stealing parallel counting.
//!
//! The seed repo's parallel path split start events into `threads` static
//! chunks and merged results through a `Mutex`. Static chunking is a poor
//! fit for motif counting: work per start event is wildly skewed (a burst
//! of activity around one timestamp can cost orders of magnitude more
//! than a quiet region), so one unlucky worker becomes the critical path.
//!
//! This executor replaces both decisions:
//!
//! * **Work stealing via an atomic cursor** — start events live behind a
//!   single `AtomicUsize`; each worker claims the next
//!   [`ParallelConfig::steal_chunk`] start events with `fetch_add` and
//!   returns for more when done. Fast workers automatically absorb the
//!   skew; there is no partitioning decision to get wrong.
//! * **Lock-free merge at join** — each worker counts into a private
//!   [`MotifCounts`] and *returns it from the scoped thread*; the spawning
//!   thread merges the locals after `join`, so no lock is ever contended
//!   (the old design serialized every worker's full-table merge behind a
//!   `Mutex` while peers were still counting).
//!
//! Candidate generation inside each worker uses the windowed index by
//! default (fetched once from the
//! [global index cache](tnm_graph::index_cache::global_index_cache) and
//! shared by reference across workers) or the plain node index when
//! constructed via [`ParallelEngine::over_backtrack`].

use crate::count::MotifCounts;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::engine::walker::{CandidateSource, NodeListCandidates, Walker, WindowedCandidates};
use crate::engine::{BacktrackEngine, CountEngine, EngineCaps, WindowedEngine};
use std::sync::atomic::{AtomicUsize, Ordering};
use tnm_graph::index_cache::global_index_cache;
use tnm_graph::TemporalGraph;

/// Tuning knobs of the work-stealing executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker count. Clamped to at least 1; 1 degenerates to serial.
    pub threads: usize,
    /// Below this many events the **auto** engine
    /// ([`EngineKind::Auto`](crate::engine::EngineKind)) prefers a serial
    /// engine — thread spawn/merge overhead dominates tiny graphs. An
    /// explicitly constructed `ParallelEngine` ignores it and honors
    /// `threads` as asked.
    pub serial_fallback_events: usize,
    /// Start events claimed per `fetch_add`. Larger chunks amortise the
    /// atomic; smaller chunks balance better. The default suits start
    /// events whose cost varies by orders of magnitude.
    pub steal_chunk: usize,
}

/// Default for [`ParallelConfig::serial_fallback_events`] (the seed
/// repo's hardcoded `m < 1024` check, now named and overridable).
pub const SERIAL_FALLBACK_EVENTS: usize = 1024;

/// Default for [`ParallelConfig::steal_chunk`].
pub const DEFAULT_STEAL_CHUNK: usize = 64;

impl ParallelConfig {
    /// Standard configuration for `threads` workers.
    pub fn new(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            serial_fallback_events: SERIAL_FALLBACK_EVENTS,
            steal_chunk: DEFAULT_STEAL_CHUNK,
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
    }
}

/// Which candidate source the workers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Inner {
    Windowed,
    Backtrack,
}

/// Work-stealing parallel counting engine.
#[derive(Debug, Clone, Copy)]
pub struct ParallelEngine {
    config: ParallelConfig,
    inner: Inner,
}

impl ParallelEngine {
    /// Work-stealing workers over the windowed candidate index.
    pub fn new(threads: usize) -> Self {
        ParallelEngine { config: ParallelConfig::new(threads), inner: Inner::Windowed }
    }

    /// Work-stealing workers over the plain node index (for apples-to-
    /// apples scheduler benchmarks against [`BacktrackEngine`]).
    pub fn over_backtrack(threads: usize) -> Self {
        ParallelEngine { config: ParallelConfig::new(threads), inner: Inner::Backtrack }
    }

    /// Overrides the executor tuning.
    pub fn with_config(mut self, config: ParallelConfig) -> Self {
        self.config = ParallelConfig { threads: config.threads.max(1), ..config };
        self
    }

    /// The executor configuration.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Runs the work-stealing loop with a per-worker `CandidateSource`
    /// factory, merging the per-worker local counts after join.
    fn run<C, M>(&self, graph: &TemporalGraph, cfg: &EnumConfig, make_source: M) -> MotifCounts
    where
        C: CandidateSource + Send,
        M: Fn() -> C + Sync,
    {
        // Build the SoA time column before the fan-out so no worker
        // stalls on its first window probe while another initializes it.
        let _ = graph.columns();
        work_steal_count(
            graph,
            cfg,
            0..graph.num_events(),
            self.config.threads,
            self.config.steal_chunk,
            make_source,
            |local, inst| local.add(inst.signature, 1),
        )
    }
}

/// The generic work-stealing executor: `threads` workers claim
/// `chunk`-sized index ranges of `0..len` through an atomic cursor,
/// each folding its claims into a private per-worker accumulator built
/// by `make_acc` (which typically bundles reusable scratch — a
/// [`Walker`], an RNG-free sampling state — with the results). The
/// per-worker accumulators are returned **in spawn order** after join,
/// so callers that need deterministic merges (the sampling engine's
/// seeded confidence intervals) can reduce them — or per-item results
/// stored inside them — in a fixed order regardless of how the work was
/// actually interleaved.
pub(crate) fn work_steal_map<A, MS, W>(
    len: usize,
    threads: usize,
    chunk: usize,
    make_acc: MS,
    work: W,
) -> Vec<A>
where
    A: Send,
    MS: Fn() -> A + Sync,
    W: Fn(&mut A, std::ops::Range<usize>) + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    let chunk = chunk.max(1);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let cursor = &cursor;
                let make_acc = &make_acc;
                let work = &work;
                scope.spawn(move || {
                    let _span = tnm_obs::span!("walk.worker", worker = worker);
                    let mut acc = make_acc();
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= len {
                            break;
                        }
                        work(&mut acc, lo..(lo + chunk).min(len));
                    }
                    acc
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// The counting instantiation of [`work_steal_map`], decoupled from
/// [`ParallelEngine`] so the sharded engine can drive it **within a
/// shard**: workers claim slices of `starts`, walk them with a
/// per-worker [`Walker`] over `make_source`'s candidate source, fold
/// each instance into a per-worker local table via `tally`, and the
/// locals merge lock-free after join (u64 additions commute, so the
/// merge order never affects the result).
pub(crate) fn work_steal_count<C, M, T>(
    graph: &TemporalGraph,
    cfg: &EnumConfig,
    starts: std::ops::Range<usize>,
    threads: usize,
    chunk: usize,
    make_source: M,
    tally: T,
) -> MotifCounts
where
    C: CandidateSource + Send,
    M: Fn() -> C + Sync,
    T: Fn(&mut MotifCounts, &MotifInstance<'_>) + Sync,
{
    let base = starts.start;
    let len = starts.len();
    let locals = work_steal_map(
        len,
        threads,
        chunk,
        || (MotifCounts::new(), Walker::new(graph, cfg, make_source())),
        |state, claimed| {
            let (local, walker) = state;
            walker.run_range(base + claimed.start..base + claimed.end, |inst| tally(local, inst));
        },
    );
    let mut merged = MotifCounts::new();
    for (local, _walker) in &locals {
        merged.merge(local);
    }
    merged
}

impl CountEngine for ParallelEngine {
    fn name(&self) -> &'static str {
        match self.inner {
            Inner::Windowed => "parallel",
            Inner::Backtrack => "parallel-backtrack",
        }
    }

    fn capabilities(&self) -> EngineCaps {
        EngineCaps {
            parallel: true,
            windowed_pruning: self.inner == Inner::Windowed,
            // Counting is deterministic; *enumeration order* under a
            // callback falls back to the serial engine (see `enumerate`).
            deterministic_enumeration: true,
            supports_signature_filter: true,
        }
    }

    fn count(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts {
        if self.config.threads <= 1 {
            // One worker: skip the executor, not the semantics.
            return match self.inner {
                Inner::Windowed => WindowedEngine.count(graph, cfg),
                Inner::Backtrack => BacktrackEngine.count(graph, cfg),
            };
        }
        match self.inner {
            Inner::Windowed => {
                let index = global_index_cache().get_or_build(graph);
                self.run(graph, cfg, || WindowedCandidates::new(&index))
            }
            Inner::Backtrack => self.run(graph, cfg, || NodeListCandidates),
        }
    }

    /// Enumeration hands instances to a `&mut dyn FnMut` callback, which
    /// cannot be shared across workers; it therefore delegates to the
    /// matching serial engine so callers get the deterministic
    /// start-event order the serial engines guarantee.
    fn enumerate(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
        callback: &mut dyn FnMut(&MotifInstance<'_>),
    ) {
        match self.inner {
            Inner::Windowed => WindowedEngine.enumerate(graph, cfg, callback),
            Inner::Backtrack => BacktrackEngine.enumerate(graph, cfg, callback),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_order_under_the_work_stealing_executor() {
        let _guard = tnm_obs::test_guard();
        tnm_obs::set_enabled(true);
        tnm_obs::drain_spans();
        let processed: Vec<usize> =
            work_steal_map(97, 4, 8, Vec::new, |acc: &mut Vec<usize>, r| {
                let _chunk = tnm_obs::span!("test.chunk", lo = r.start);
                acc.extend(r);
            })
            .into_iter()
            .flatten()
            .collect();
        let spans = tnm_obs::drain_spans();
        tnm_obs::set_enabled(false);
        // Every index processed exactly once regardless of interleaving.
        let mut sorted = processed;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..97).collect::<Vec<_>>());
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "walk.worker").collect();
        let chunks: Vec<_> = spans.iter().filter(|s| s.name == "test.chunk").collect();
        assert_eq!(workers.len(), 4, "one span per spawned worker");
        assert_eq!(chunks.len(), 13, "97 indices in chunks of 8 → 13 claims");
        for c in &chunks {
            // Each chunk span nests inside its thread's worker span:
            // same tid, one level deeper, interval contained.
            let parent =
                workers.iter().find(|w| w.tid == c.tid).expect("chunk ran on a worker thread");
            assert_eq!(c.depth, parent.depth + 1);
            assert!(c.start_ns >= parent.start_ns);
            assert!(c.start_ns + c.dur_ns <= parent.start_ns + parent.dur_ns);
        }
        // Worker threads are distinct, and chunk spans within one
        // thread are disjoint and time-ordered.
        let mut tids: Vec<_> = workers.iter().map(|w| w.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4);
        for w in &workers {
            let mut mine: Vec<_> = chunks.iter().filter(|c| c.tid == w.tid).collect();
            mine.sort_by_key(|c| c.start_ns);
            for pair in mine.windows(2) {
                assert!(pair[0].start_ns + pair[0].dur_ns <= pair[1].start_ns);
            }
        }
    }
}
