//! Pluggable counting engines.
//!
//! Every motif configuration in the paper ultimately runs the same
//! abstract job — *enumerate time-ordered single-component event
//! sequences under ΔC/ΔW pruning, filter, canonicalise, count* — but the
//! profitable execution strategy varies with the workload: graph size,
//! timing tightness, available cores, and whether the log fits in
//! memory at all. This module makes the strategy a value: a
//! [`CountEngine`] trait with seven interchangeable implementations,
//! selectable programmatically via [`EngineKind`] or from the CLI via
//! `--engine`.
//!
//! ## Choosing an engine
//!
//! | engine | strategy | pick it when |
//! |---|---|---|
//! | [`BacktrackEngine`] | serial walk, plain node-index scans | tiny graphs or unbounded timing, where building an index outweighs pruning; also the reference for differential tests |
//! | [`WindowedEngine`] | serial walk, [`WindowIndex`](tnm_graph::WindowIndex) binary-search pruning | bounded ΔC/ΔW on one core — the best single-threaded walker for realistic in-memory workloads |
//! | [`ParallelEngine`] | work-stealing workers over the windowed index | large graphs on multi-core hardware with enough admissible work per start event |
//! | [`ShardedEngine`] | time-slice shards with bounded halos ([`tnm_graph::shard`]), counted one at a time; work-stealing within a shard, optional spill to disk | very large logs under bounded timing — and the only exact option when the working set must stay below the graph size (out-of-core runs) |
//! | [`DistributedEngine`] | coordinator/worker **processes** over the shard plan: spilled shards shipped to `tnm worker` children via the framed [`tnm_graph::wire`] protocol, crash-detected shards rescheduled onto survivors | the same huge bounded-timing logs once one process's cores are the bottleneck — the stepping stone to multi-machine runs |
//! | [`StreamEngine`] | count-without-enumerating window DPs (2-node pair prefix counts, per-center star tables, per-triangle label DP) | eligible Paranjape-shape jobs — ΔW only, non-induced, no restrictions, ≤ 3 events, ≤ 3 nodes — where cost is near-linear in *events*, not instances; ineligible configs fall back to the windowed walker |
//! | [`SamplingEngine`] | interval sampling over the windowed index; draws evaluate in parallel under a thread budget with bit-identical seeded results | graphs or windows too large for exact counting, when an estimate with a confidence interval is enough |
//!
//! The walkers all pay cost proportional to the number of motif
//! *instances*; [`StreamEngine`] is the one engine with different
//! asymptotics, and [`auto_select`] routes every eligible job to it
//! first. All but the sampler are **exact** and produce identical
//! [`MotifCounts`] for identical [`EnumConfig`]s — the cross-engine
//! equivalence suite (`tests/engine_equivalence.rs`) enforces this for
//! all four paper models, including shard cuts placed inside motif
//! spans, the stream engine's eligibility boundary, and the distributed
//! engine's process boundary (worker crashes included). The sampling
//! engine is **approximate**: its `count` returns rounded point
//! estimates, and its calibration is enforced by
//! `tests/sampling_calibration.rs` instead.
//!
//! ## Reading sampling confidence intervals
//!
//! [`CountEngine::report`] widens `count`'s result to an
//! [`EngineReport`]: per-motif [`Estimate`]s (`point ± half_width`, a
//! ~95 % normal-approximation interval) plus an interval on the total.
//! Exact engines report zero-width intervals, so
//! `report.estimate(sig).contains(x)` degrades to an equality test and
//! callers can treat every engine uniformly. For sampled reports,
//! `half_width` shrinks as `1/√samples`: quadruple the budget to halve
//! the interval. A signature the sampler never observed reports a
//! zero-point, zero-width estimate — indistinguishable from a true zero
//! count, which is the inherent limitation of sampling rare motifs.
//!
//! [`EngineKind::Auto`] picks an engine from the graph, configuration,
//! and thread budget (see [`auto_select`]) and is what the legacy
//! [`count_motifs`](crate::count_motifs) wrapper uses.
//! All windowed engines share one [`WindowIndex`](tnm_graph::WindowIndex)
//! per graph through the
//! [global index cache](tnm_graph::index_cache::global_index_cache), so
//! repeated counts of the same graph — the experiment drivers' common
//! pattern — pay the `O(m)` build once.
//!
//! ## Batching many configurations
//!
//! Counting *several* configurations against one graph should go
//! through [`count_batch`] / [`EngineKind::count_batch`] /
//! [`enumerate_batch`] instead of a loop: [`BatchPlanner`] groups
//! configs that share a walk shape (or a stream-DP `(ΔW, events)`
//! bucket) and answers each group in **one traversal**, demoting
//! per-config differences — tighter windows, node bounds, signature
//! targets — to per-instance masks and table projections. N compatible
//! configs cost ~1 traversal + N projections rather than N traversals,
//! and every result stays bit-identical to the per-config call (the
//! analysis drivers `table3`/`table5`/`fig5` run as batch plans, and
//! `tnm count-batch` exposes the same API on the CLI). Under `Auto`,
//! each group's engine is chosen from its widest-reach member;
//! sharded/distributed/sampling kinds run each config solo, since their
//! per-run setup is not shareable.
//!
//! ## The Query API
//!
//! Front ends do not dispatch over [`EngineKind`] by hand: they build a
//! [`Query`] — Count, Report, Enumerate, or Batch, each wrapping one or
//! more [`EnumConfig`]s plus an engine and thread budget — and call
//! [`Query::run`]. Validation ([`EnumConfig::validate`], returning the
//! typed [`ConfigError`]) and dispatch live in one place, so the CLI
//! `count`/`count-batch` verbs, library callers, and the `tnm serve`
//! daemon answer identical requests bit-identically. [`QueryResponse`]
//! mirrors the request shape (counts / interval report / bounded
//! instances / per-config tables).
//!
//! ## `tnm serve`: the resident counting service
//!
//! [`MotifServer`] turns the crate into a long-running system: a TCP
//! daemon holding a registry of loaded graphs (the identity-keyed
//! window-index/static-projection caches as its resident working set),
//! answering [`Query`] requests from concurrent clients, and keeping
//! registered Paranjape-shape subscriptions **live under appends** via
//! [`IncrementalStream`] — O(new events) per batch, bit-identical to a
//! from-scratch [`StreamEngine`] recount. Messages travel as
//! [`tnm_graph::wire`] frames versioned alongside the worker protocol:
//! request kinds LoadGraph 16, AppendEvents 17, Query 18, Subscribe 19,
//! Stats 20, Shutdown 21; response kinds Loaded 32, Appended 33,
//! QueryResponse 34, Subscribed 35, Stats 36, Bye 37, Error 63 (worker
//! kinds own `1..=4`, so the protocols cannot be confused). Use
//! [`ServeClient`] (or the `tnm client` verb) to speak it.
//!
//! ## Data layout
//!
//! The hot loops are data-oriented, built on two layout decisions made
//! in [`tnm_graph`] (see its crate docs):
//!
//! * **SoA event columns.** Every per-event field the inner loops touch
//!   comes from [`TemporalGraph::columns`](tnm_graph::TemporalGraph::columns)
//!   — dense `times`/`srcs`/`dsts` arrays built lazily once per graph —
//!   rather than striding through 24-byte [`Event`](tnm_graph::Event)
//!   structs. Window probes (`count_*_between`, walker candidate
//!   gathering, shard halo scans) are `partition_point` calls over the
//!   contiguous `i64` time column; the star sweeps read endpoints from
//!   the `u32` source/destination columns.
//! * **Arena-resident merged lists.** The [`StreamEngine`] DPs never
//!   allocate per pair/center/triangle: merged direction- or
//!   label-tagged event lists live in one reusable SoA arena with
//!   precomputed timestamp-group boundaries, window expiry advances an
//!   amortized group cursor against those boundaries, and the DP tables are
//!   flat bit-indexed `[u64; K]` accumulators whose updates are
//!   unconditional indexed adds. Triangles additionally run in
//!   footprint-sorted cache-sized blocks so the scratch stays
//!   L2-resident.
//!
//! The `hotpath_*` bench groups (`crates/bench/benches/engines.rs`)
//! time each of these loops against a faithful copy of the
//! struct-chasing implementation they replaced.
//!
//! ## Observability
//!
//! Every engine layer is instrumented through [`tnm_obs`]: hierarchical
//! timed spans (exported as Chrome-trace JSON by `tnm count --trace`)
//! and a registry of named counters/gauges/histograms (`tnm client
//! --metrics` renders the daemon's registry as Prometheus text). The
//! whole subsystem sits behind one relaxed atomic flag
//! ([`tnm_obs::enabled`]) — disabled, each instrumentation point costs
//! a single branch, pinned by the `obs_overhead` bench group and a
//! bit-identical-counts test.
//!
//! The naming contract (changing a name is a breaking change for
//! dashboards; record renames in ROADMAP.md):
//!
//! | layer | spans | metrics |
//! |---|---|---|
//! | walkers | `walk.worker{worker}` | `engine.events_scanned`, `engine.candidates_pruned`, `engine.instances_emitted` |
//! | caches | — | `cache.{index,proj}.{hits,misses,rejected}`, `cache.{index,proj}.verify_ns` |
//! | shard store | `walk.shard{shard}` | `shard.{loads,spills,evictions}`, `shard.resident_events` (peak = the canonical high-water mark) |
//! | stream DPs | — | `stream.pair.{pairs_swept,groups_advanced,window_events}`, `stream.star.{centers_swept,center_events}`, `stream.triad.{triangles_swept,groups_advanced,window_events}` |
//! | distributed | `distributed.{plan,spill,spawn,merge}` + synthetic `distributed.walk{shard}` from worker wall times | `distributed.shard_wall_ns`, `distributed.{workers_lost,jobs_rescheduled}` |
//! | query API | `query.{count,report,enumerate,batch}{engine,threads}` — the root of every [`Query::run`] | — |
//! | serve | `serve.query{graph,kind}`, `serve.subscribe{graph}` — per-request roots when the trace flag is set | `serve.{queries,appends}`, `serve.query.{count,report,enumerate,batch}_ns`, `serve.connection_frames`, `serve.subscription_advance_ns` |
//!
//! Workers ship their per-job metrics snapshot (plus wall time) inside
//! reply frames; the coordinator folds them into its own registry, so
//! one trace and one snapshot describe a whole distributed run —
//! per-shard wall times make stragglers visible. When a request-scoped
//! trace is active ([`tnm_obs::TraceCtx`], set by the serve trace flag
//! or `tnm client --trace`), workers additionally ship their **span
//! trees**: the coordinator re-mints span ids and stitches them under
//! the request's parent span, so one Chrome-trace document shows
//! coordinator phases and per-shard worker walks on one timeline. The
//! daemon's scrape surface (`/metrics`, `/healthz`, `/timeseries`),
//! sample ring, and query logs are documented in the serve module's
//! "Operating `tnm serve`" section. `tnm count --explain`
//! prints [`explain_auto_select`]'s measured decision for the workload.

mod backtrack;
mod batch;
mod config;
mod distributed;
mod parallel;
mod query;
mod report;
mod sampling;
mod serve;
mod sharded;
mod stream;
mod walker;
mod windowed;

pub use backtrack::BacktrackEngine;
pub use batch::{count_batch, enumerate_batch, BatchPlan, BatchPlanner, WalkDriver};
pub use config::{ConfigError, EnumConfig, MotifInstance};
pub use distributed::{
    run_worker, DistributedConfig, DistributedEngine, DistributedRunStats, DEFAULT_WORKERS,
};
pub use parallel::{ParallelConfig, ParallelEngine, DEFAULT_STEAL_CHUNK, SERIAL_FALLBACK_EVENTS};
pub use query::{Query, QueryError, QueryInstance, QueryResponse};
pub use report::{t_critical_95, EngineReport, Estimate, Z_95};
pub use sampling::{SamplingEngine, DEFAULT_SAMPLING_BUDGET, DEFAULT_SAMPLING_SEED};
pub use serve::{
    AppendAck, AppendError, ClientError, GraphStat, IncrementalStream, MotifServer, QueryLogEntry,
    ServeClient, ServeOptions, ServerHandle, ServerStats, TraceReply,
};
pub use sharded::{ShardedConfig, ShardedEngine, ShardedRunStats, DEFAULT_SHARD_EVENTS};
#[doc(hidden)]
pub use stream::hotpath as stream_hotpath;
pub use stream::StreamEngine;
pub use windowed::WindowedEngine;

use crate::count::MotifCounts;
use tnm_graph::TemporalGraph;

/// What an engine can do; used by callers to pick and by diagnostics to
/// explain a choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCaps {
    /// Uses more than one thread in `count`.
    pub parallel: bool,
    /// Prunes candidates through the time-windowed index.
    pub windowed_pruning: bool,
    /// `enumerate` visits instances in the serial start-event order.
    pub deterministic_enumeration: bool,
    /// Honors [`EnumConfig::signature_filter`] with prefix pruning.
    pub supports_signature_filter: bool,
}

/// A motif counting engine: one execution strategy for the shared
/// enumeration semantics defined by [`EnumConfig`].
pub trait CountEngine: Send + Sync {
    /// Stable engine name (what `--engine` parses, what reports print).
    fn name(&self) -> &'static str;

    /// Capability flags.
    fn capabilities(&self) -> EngineCaps;

    /// Counts instances per canonical signature.
    fn count(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts;

    /// Invokes `callback` once per instance (events in time order).
    fn enumerate(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
        callback: &mut dyn FnMut(&MotifInstance<'_>),
    );

    /// Counts with uncertainty attached: per-motif point estimates and
    /// ~95 % confidence intervals. Exact engines use this default
    /// implementation — their counts wrapped in zero-width intervals —
    /// so the report shape is uniform across exact and approximate
    /// backends (see the [module docs](self) on reading intervals).
    fn report(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> EngineReport {
        EngineReport::from_exact(self.name(), self.count(graph, cfg))
    }
}

/// Engine selection, parseable from CLI strings (`--engine windowed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// [`BacktrackEngine`].
    Backtrack,
    /// [`WindowedEngine`].
    Windowed,
    /// [`ParallelEngine`] over the windowed index.
    Parallel,
    /// [`StreamEngine`]: exact count-without-enumerating fast path for
    /// eligible Paranjape-shape jobs, windowed-walker fallback otherwise.
    Stream,
    /// [`ShardedEngine`] over time-slice shards (exact; spills to disk
    /// when `max_resident_shards > 0`).
    Sharded {
        /// Target owned start events per shard.
        shard_events: usize,
        /// `0` = in-memory; `n > 0` = spill mode keeping ≤ `n` shards
        /// resident.
        max_resident_shards: usize,
    },
    /// [`DistributedEngine`]: the shard plan farmed out to worker
    /// **processes** over the framed wire protocol (exact; crash-
    /// detected shards are rescheduled onto surviving workers).
    Distributed {
        /// Worker processes to spawn.
        workers: usize,
        /// Target owned start events per shard.
        shard_events: usize,
    },
    /// [`SamplingEngine`] with the given budget and seed (approximate).
    Sampling {
        /// Number of sample windows to draw.
        samples: u32,
        /// RNG seed (runs are deterministic given the seed).
        seed: u64,
    },
    /// Pick per-workload via [`auto_select`].
    #[default]
    Auto,
}

/// Below this many events, an unbounded-timing workload resolves to
/// [`BacktrackEngine`]: with no ΔC/ΔW to prune by, the window index buys
/// only a cheaper candidate merge, which cannot amortise its own `O(m)`
/// build on a graph this small.
pub const WINDOWED_MIN_EVENTS: usize = 256;

/// Minimum expected number of admissible events per pruning window for
/// [`auto_select`] to go parallel. Below this, most walks die after one
/// candidate probe and thread spawn/merge overhead outweighs the work
/// being distributed.
pub const PARALLEL_MIN_WINDOW_EVENTS: f64 = 2.0;

/// Minimum expected events per ΔW window for [`auto_select`] to route a
/// **triangle-bearing** job to [`StreamEngine`]. The stream pair/star
/// classes are `O(events)` regardless, but the triad class pays
/// Σ over static triangles of their event counts — projection-density
/// work the window never prunes. Below one expected event per window the
/// walkers' probes die almost immediately (≈ `O(m)` total), so a
/// starved needle-ΔW sweep over a dense projection must stay on them.
/// Jobs whose node budget or signature target gates the triangle class
/// off ([`StreamEngine::needs_triads`]) skip this check.
pub const STREAM_MIN_WINDOW_EVENTS: f64 = 1.0;

/// From this many events up, [`auto_select`] prefers the sharded engine
/// for bounded-timing workloads: one monolithic `WindowIndex` plus
/// whole-graph walks stop being memory-friendly, while time slices with
/// bounded halos keep the working set small at (measured) comparable
/// throughput. Requires a bounded admissible reach — with unbounded
/// timing a shard's halo would cover the rest of the log and sharding
/// buys nothing.
pub const SHARDED_MIN_EVENTS: usize = 262_144;

/// From this many events up — four sharded thresholds — [`auto_select`]
/// escalates a bounded-reach, multi-worker workload from the in-process
/// sharded engine to [`EngineKind::Distributed`]: the shard plan is the
/// same, but per-shard index builds and walks move to worker processes,
/// so the coordinator's address space holds only the parent graph and
/// the merge. Like the sharded rule it requires a bounded admissible
/// reach, and additionally a worker budget above one — a single worker
/// would pay process spawn and wire framing for the sharded engine's
/// exact work.
pub const DISTRIBUTED_MIN_EVENTS: usize = 1_048_576;

/// Expected number of events inside one pruning window: the graph's
/// event count scaled by the fraction of the timeline a walk may reach
/// from its first event
/// ([`EnumConfig::max_admissible_span`] against the timespan).
/// Infinite for unbounded timing.
fn expected_window_events(graph: &TemporalGraph, cfg: &EnumConfig) -> f64 {
    let Some(reach) = cfg.max_admissible_span() else {
        return f64::INFINITY;
    };
    let span = graph.timespan().max(1);
    graph.num_events() as f64 * (reach.min(span) as f64 / span as f64)
}

/// The selection table behind [`EngineKind::Auto`], resolving to a
/// concrete kind from the workload:
///
/// 1. a [`StreamEngine::eligible`] configuration (Paranjape shape: ΔW
///    set, no ΔC, no restrictions, non-induced, ≤ 3 events, ≤ 3 nodes)
///    → [`EngineKind::Stream`] — the only asymptotic win on the table
///    (near-linear in events, not instances), so it outranks every
///    walker regardless of graph size or thread budget. One carve-out:
///    when the job's triangle class would run
///    ([`StreamEngine::needs_triads`]) **and** the window is starved
///    (expected occupancy below [`STREAM_MIN_WINDOW_EVENTS`]), the
///    walkers keep the job — their probes die instantly under a needle
///    ΔW while the triad merge still pays projection-density work;
/// 2. unbounded timing on a graph under [`WINDOWED_MIN_EVENTS`] events →
///    [`EngineKind::Backtrack`] (nothing to prune; skip the index build);
/// 3. at least [`DISTRIBUTED_MIN_EVENTS`] events with a bounded
///    admissible reach and a worker budget above one →
///    [`EngineKind::Distributed`] (the thread budget becomes the worker
///    count; counting leaves the coordinator's address space);
/// 4. at least [`SHARDED_MIN_EVENTS`] events with a bounded admissible
///    reach ([`EnumConfig::admissible_reach`]) →
///    [`EngineKind::Sharded`] (bounded working set; the within-shard
///    executor still uses the thread budget);
/// 5. more than one thread, at least [`SERIAL_FALLBACK_EVENTS`] events,
///    **and** at least [`PARALLEL_MIN_WINDOW_EVENTS`] expected events
///    per ΔC/ΔW window → [`EngineKind::Parallel`] (enough work per start
///    event to pay for spawn and merge);
/// 6. otherwise → [`EngineKind::Windowed`].
///
/// Rule 5 is why a huge-but-unsharded graph under an extremely tight ΔW
/// still runs serial: each walk dies after a probe or two, so
/// distributing the starts distributes almost nothing. [`auto_select`]
/// never resolves to the approximate sampler — estimation is an explicit
/// caller choice, not a performance fallback. The table is pinned by
/// unit tests in this module.
pub fn auto_select(graph: &TemporalGraph, cfg: &EnumConfig, threads: usize) -> EngineKind {
    explain_auto_select(graph, cfg, threads).chosen
}

/// The measured inputs behind one [`auto_select`] decision and the
/// selection-table rule they fired — what `tnm count --explain` prints.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoSelectExplanation {
    /// The resolved concrete kind.
    pub chosen: EngineKind,
    /// Events in the graph (`m`).
    pub num_events: usize,
    /// The thread budget the selector was given.
    pub threads: usize,
    /// Expected admissible events per ΔC/ΔW pruning window
    /// ([`f64::INFINITY`] with unbounded timing).
    pub expected_window_events: f64,
    /// True when neither ΔC nor ΔW is set.
    pub unbounded_timing: bool,
    /// True when [`EnumConfig::admissible_reach`] is bounded (sharding
    /// and distribution are viable).
    pub bounded_reach: bool,
    /// True when the config fits the stream fast path
    /// ([`StreamEngine::eligible`]).
    pub stream_eligible: bool,
    /// True when the stream path would run its triangle class
    /// ([`StreamEngine::needs_triads`]).
    pub needs_triads: bool,
    /// The 1-based rule of the [`auto_select`] doc table that fired
    /// (6 = the windowed default).
    pub rule: u8,
    /// One-line rationale for the fired rule.
    pub reason: &'static str,
}

impl std::fmt::Display for AutoSelectExplanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "auto-select: {} (rule {})", self.chosen, self.rule)?;
        writeln!(f, "  reason: {}", self.reason)?;
        writeln!(f, "  num_events: {}", self.num_events)?;
        writeln!(f, "  threads: {}", self.threads)?;
        if self.expected_window_events.is_finite() {
            writeln!(f, "  expected_window_events: {:.2}", self.expected_window_events)?;
        } else {
            writeln!(f, "  expected_window_events: inf (unbounded timing)")?;
        }
        writeln!(f, "  unbounded_timing: {}", self.unbounded_timing)?;
        writeln!(f, "  bounded_reach: {}", self.bounded_reach)?;
        writeln!(f, "  stream_eligible: {}", self.stream_eligible)?;
        write!(f, "  needs_triads: {}", self.needs_triads)
    }
}

/// [`auto_select`] with its working shown: the same decision chain,
/// returning the chosen kind together with every measured input and the
/// rule that fired. `auto_select` delegates here, so the two can never
/// disagree.
pub fn explain_auto_select(
    graph: &TemporalGraph,
    cfg: &EnumConfig,
    threads: usize,
) -> AutoSelectExplanation {
    let m = graph.num_events();
    let window = expected_window_events(graph, cfg);
    let unbounded = cfg.timing.delta_c.is_none() && cfg.timing.delta_w.is_none();
    let bounded_reach = cfg.admissible_reach(graph).is_some();
    let stream_eligible = StreamEngine::eligible(cfg);
    let needs_triads = StreamEngine::needs_triads(cfg);
    let mut explain = AutoSelectExplanation {
        chosen: EngineKind::Windowed,
        num_events: m,
        threads,
        expected_window_events: window,
        unbounded_timing: unbounded,
        bounded_reach,
        stream_eligible,
        needs_triads,
        rule: 6,
        reason: "no specialised rule fired; the serial windowed walker is the default",
    };
    if stream_eligible && (!needs_triads || window >= STREAM_MIN_WINDOW_EVENTS) {
        explain.chosen = EngineKind::Stream;
        explain.rule = 1;
        explain.reason = "stream-eligible shape; the window DP is near-linear in events";
        return explain;
    }
    if unbounded && m < WINDOWED_MIN_EVENTS {
        explain.chosen = EngineKind::Backtrack;
        explain.rule = 2;
        explain.reason = "unbounded timing on a small graph; nothing to prune, skip the index";
        return explain;
    }
    if threads > 1 && m >= DISTRIBUTED_MIN_EVENTS && bounded_reach {
        explain.chosen =
            EngineKind::Distributed { workers: threads, shard_events: DEFAULT_SHARD_EVENTS };
        explain.rule = 3;
        explain.reason = "huge bounded-reach graph with a worker budget; leave the address space";
        return explain;
    }
    if m >= SHARDED_MIN_EVENTS && bounded_reach {
        explain.chosen =
            EngineKind::Sharded { shard_events: DEFAULT_SHARD_EVENTS, max_resident_shards: 0 };
        explain.rule = 4;
        explain.reason = "large bounded-reach graph; time slices keep the working set small";
        return explain;
    }
    if threads > 1 && m >= SERIAL_FALLBACK_EVENTS && window >= PARALLEL_MIN_WINDOW_EVENTS {
        explain.chosen = EngineKind::Parallel;
        explain.rule = 5;
        explain.reason = "enough admissible work per start event to pay for spawn and merge";
        return explain;
    }
    explain
}

impl EngineKind {
    /// Every concrete **exact** kind (excludes `Auto` and the
    /// approximate sampler), for sweeps and benches.
    pub const CONCRETE: [EngineKind; 6] = [
        EngineKind::Backtrack,
        EngineKind::Windowed,
        EngineKind::Parallel,
        EngineKind::Stream,
        EngineKind::Sharded { shard_events: DEFAULT_SHARD_EVENTS, max_resident_shards: 0 },
        EngineKind::Distributed { workers: DEFAULT_WORKERS, shard_events: DEFAULT_SHARD_EVENTS },
    ];

    /// The exact kinds as a slice — the registry the cross-engine
    /// equivalence sweep iterates (`tests/engine_equivalence.rs`), so a
    /// newly registered exact engine (the stream fast path included)
    /// cannot be silently skipped. Identical to [`EngineKind::CONCRETE`].
    pub fn all_exact() -> &'static [EngineKind] {
        &Self::CONCRETE
    }

    /// The sampling kind with an explicit budget and seed.
    pub fn sampling(samples: u32, seed: u64) -> EngineKind {
        EngineKind::Sampling { samples, seed }
    }

    /// The sharded kind with an explicit per-shard event target and
    /// resident budget (`0` = in-memory).
    pub fn sharded(shard_events: usize, max_resident_shards: usize) -> EngineKind {
        EngineKind::Sharded { shard_events, max_resident_shards }
    }

    /// The distributed kind with explicit worker-process and per-shard
    /// event targets.
    pub fn distributed(workers: usize, shard_events: usize) -> EngineKind {
        EngineKind::Distributed { workers, shard_events }
    }

    /// Instantiates the engine, resolving `Auto` against the workload
    /// via [`auto_select`].
    pub fn engine_for(
        self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
        threads: usize,
    ) -> Box<dyn CountEngine> {
        match self {
            EngineKind::Backtrack => Box::new(BacktrackEngine),
            EngineKind::Windowed => Box::new(WindowedEngine),
            EngineKind::Parallel => Box::new(ParallelEngine::new(threads)),
            EngineKind::Stream => Box::new(StreamEngine),
            EngineKind::Sharded { shard_events, max_resident_shards } => {
                let mut engine =
                    ShardedEngine::new(shard_events.max(1)).with_threads(threads.max(1));
                if max_resident_shards > 0 {
                    engine = engine.with_max_resident(max_resident_shards);
                }
                Box::new(engine)
            }
            EngineKind::Distributed { workers, shard_events } => {
                let workers = workers.max(1);
                // The thread budget spreads across the worker
                // processes: T threads over W workers gives each worker
                // ⌊T/W⌋ (at least 1) within-shard threads, keeping
                // total parallelism at the budget instead of W × T —
                // and keeping auto-resolved runs (workers = threads)
                // from oversubscribing quadratically.
                Box::new(
                    DistributedEngine::new(workers)
                        .with_shard_events(shard_events.max(1))
                        .with_worker_threads((threads.max(1) / workers).max(1)),
                )
            }
            EngineKind::Sampling { samples, seed } => {
                Box::new(SamplingEngine::new(samples.max(1) as usize, seed).with_threads(threads))
            }
            EngineKind::Auto => auto_select(graph, cfg, threads).engine_for(graph, cfg, threads),
        }
    }

    /// Counts with the engine this kind resolves to.
    pub fn count(self, graph: &TemporalGraph, cfg: &EnumConfig, threads: usize) -> MotifCounts {
        self.engine_for(graph, cfg, threads).count(graph, cfg)
    }

    /// Reports (counts plus confidence intervals) with the engine this
    /// kind resolves to.
    pub fn report(self, graph: &TemporalGraph, cfg: &EnumConfig, threads: usize) -> EngineReport {
        self.engine_for(graph, cfg, threads).report(graph, cfg)
    }

    /// Counts a whole batch of configurations, sharing traversals
    /// across compatible configs (see the [`batch`](self) planner):
    /// stream-eligible ΔW groups share one DP pass, walk-shaped groups
    /// share one widest-timing walk with per-config emission masks, and
    /// unshareable kinds (sharded/distributed/sampling) run each config
    /// solo. `out[i]` is bit-identical to `self.count(graph, &cfgs[i],
    /// threads)` — enforced by `tests/batch_planner.rs`. Under `Auto`,
    /// each group's engine is chosen from its widest-reach member.
    pub fn count_batch(
        self,
        graph: &TemporalGraph,
        cfgs: &[EnumConfig],
        threads: usize,
    ) -> Vec<MotifCounts> {
        batch::count_batch_with(graph, cfgs, self, threads)
    }
}

impl std::str::FromStr for EngineKind {
    type Err = ParseEngineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "backtrack" => Ok(EngineKind::Backtrack),
            "windowed" => Ok(EngineKind::Windowed),
            "parallel" => Ok(EngineKind::Parallel),
            "stream" => Ok(EngineKind::Stream),
            "sharded" => Ok(EngineKind::Sharded {
                shard_events: DEFAULT_SHARD_EVENTS,
                max_resident_shards: 0,
            }),
            "distributed" => Ok(EngineKind::Distributed {
                workers: DEFAULT_WORKERS,
                shard_events: DEFAULT_SHARD_EVENTS,
            }),
            "sampling" => Ok(EngineKind::Sampling {
                samples: DEFAULT_SAMPLING_BUDGET as u32,
                seed: DEFAULT_SAMPLING_SEED,
            }),
            "auto" => Ok(EngineKind::Auto),
            _ => Err(ParseEngineError { got: s.to_string() }),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EngineKind::Backtrack => "backtrack",
            EngineKind::Windowed => "windowed",
            EngineKind::Parallel => "parallel",
            EngineKind::Stream => "stream",
            EngineKind::Sharded { .. } => "sharded",
            EngineKind::Distributed { .. } => "distributed",
            EngineKind::Sampling { .. } => "sampling",
            EngineKind::Auto => "auto",
        };
        f.write_str(s)
    }
}

/// Error from parsing an engine name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineError {
    got: String,
}

impl std::fmt::Display for ParseEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown engine `{}` (expected backtrack, windowed, parallel, stream, sharded, \
             distributed, sampling, or auto)",
            self.got
        )
    }
}

impl std::error::Error for ParseEngineError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use tnm_graph::TemporalGraphBuilder;

    fn tiny() -> TemporalGraph {
        TemporalGraphBuilder::new().event(0, 1, 10).event(1, 2, 20).event(2, 3, 30).build().unwrap()
    }

    /// Deterministic LCG graph with `events` events spread over `span`
    /// seconds on 40 nodes.
    fn sized(events: usize, span: i64) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..events {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((x >> 33) % 40) as u32;
            let v = (u + 1 + ((x >> 13) % 38) as u32) % 40;
            let t = (i as i64 * span) / events as i64;
            b.push(tnm_graph::Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    #[test]
    fn kind_parses_and_displays() {
        for kind in [
            EngineKind::Backtrack,
            EngineKind::Windowed,
            EngineKind::Parallel,
            EngineKind::Stream,
            EngineKind::Auto,
        ] {
            let round: EngineKind = kind.to_string().parse().unwrap();
            assert_eq!(round, kind);
        }
        assert_eq!("WINDOWED".parse::<EngineKind>().unwrap(), EngineKind::Windowed);
        assert_eq!(
            "sampling".parse::<EngineKind>().unwrap(),
            EngineKind::sampling(DEFAULT_SAMPLING_BUDGET as u32, DEFAULT_SAMPLING_SEED),
        );
        assert_eq!(EngineKind::sampling(9, 3).to_string(), "sampling");
        assert_eq!(
            "sharded".parse::<EngineKind>().unwrap(),
            EngineKind::sharded(DEFAULT_SHARD_EVENTS, 0),
        );
        assert_eq!(EngineKind::sharded(512, 4).to_string(), "sharded");
        assert_eq!(
            "distributed".parse::<EngineKind>().unwrap(),
            EngineKind::distributed(DEFAULT_WORKERS, DEFAULT_SHARD_EVENTS),
        );
        assert_eq!(EngineKind::distributed(4, 512).to_string(), "distributed");
        assert!("bogus".parse::<EngineKind>().is_err());
        let msg = "bogus".parse::<EngineKind>().unwrap_err().to_string();
        assert!(msg.contains("sampling"), "error must list all engines: {msg}");
        assert!(msg.contains("sharded"), "error must list all engines: {msg}");
        assert!(msg.contains("stream"), "error must list all engines: {msg}");
        assert!(msg.contains("distributed"), "error must list all engines: {msg}");
    }

    /// Sweeps and benches iterate [`EngineKind::all_exact`]; the stream
    /// fast path must be in it, or the one engine with different
    /// asymptotics silently drops out of every equivalence sweep and
    /// bench history.
    #[test]
    fn all_exact_includes_stream() {
        assert!(EngineKind::all_exact().contains(&EngineKind::Stream));
        assert_eq!(EngineKind::all_exact(), EngineKind::CONCRETE);
        assert!(!EngineKind::all_exact().contains(&EngineKind::Auto));
        assert!(!EngineKind::all_exact().iter().any(|k| matches!(k, EngineKind::Sampling { .. })));
        // The first cross-process engine must sit in the registry too,
        // or the equivalence sweep never crosses a process boundary.
        assert!(EngineKind::all_exact()
            .iter()
            .any(|k| matches!(k, EngineKind::Distributed { .. })));
    }

    /// Pins the [`auto_select`] table: each row is (events, span,
    /// timing, threads) → expected concrete kind.
    #[test]
    fn auto_selection_table() {
        let tiny = tiny();
        let large = sized(4096, 40_000); // well above SERIAL_FALLBACK_EVENTS
        let small = sized(100, 1_000); // above nothing
                                       // At the sharded threshold exactly (the rule is `>=`).
        let huge = sized(SHARDED_MIN_EVENTS, 4_000_000);
        // At the distributed threshold exactly (the rule is `>=`).
        let mega = sized(DISTRIBUTED_MIN_EVENTS, 16_000_000);
        let sharded_default = EngineKind::sharded(DEFAULT_SHARD_EVENTS, 0);
        let unbounded = EnumConfig::new(3, 3);
        // Stream-eligible: ΔW only, ≤ 3 events on ≤ 3 nodes.
        let loose_w = EnumConfig::new(3, 3).with_timing(Timing::only_w(3_000));
        // ΔW=10 over a 40k span at ~0.1 events/s → ~1 event per window.
        let needle_w = EnumConfig::new(3, 3).with_timing(Timing::only_w(10));
        // Same ΔW shapes pushed out of stream eligibility: 4 events, or
        // a node budget admitting 4-node motifs.
        let loose_w4 = EnumConfig::new(4, 4).with_timing(Timing::only_w(3_000));
        let needle_w4 = EnumConfig::new(4, 4).with_timing(Timing::only_w(10));
        let loose_w_4n = EnumConfig::new(3, 4).with_timing(Timing::only_w(3_000));
        // Eligible needle with the triangle class gated off by the node
        // budget: the occupancy carve-out does not apply.
        let needle_w_2n = EnumConfig::new(3, 2).with_timing(Timing::only_w(10));
        let loose_c = EnumConfig::new(3, 3).with_timing(Timing::only_c(2_000));
        // Duration-aware ΔC bounds nothing from the config alone (gaps
        // run from event ends): reach counts as unbounded.
        let mut aware_c = EnumConfig::new(3, 3).with_timing(Timing::only_c(5));
        aware_c.duration_aware = true;
        let table: &[(&TemporalGraph, &EnumConfig, usize, EngineKind)] = &[
            // 1. Stream-eligible Paranjape shape: the asymptotic win
            // outranks every walker, at any size or thread budget.
            (&tiny, &loose_w, 1, EngineKind::Stream),
            (&small, &loose_w, 8, EngineKind::Stream),
            (&large, &loose_w, 1, EngineKind::Stream),
            (&large, &loose_w, 8, EngineKind::Stream),
            // ...the large graph's ΔW=10 windows hold ≈1 expected event,
            // right at STREAM_MIN_WINDOW_EVENTS, so the needle stays
            // streamed there...
            (&large, &needle_w, 8, EngineKind::Stream),
            (&huge, &loose_w, 8, EngineKind::Stream),
            // ...but the huge graph's windows are starved (<1 expected
            // event) and the job carries triangles: the carve-out hands
            // it to the walkers (rule 3 shards it). With triangles gated
            // off by a 2-node budget the same needle still streams.
            (&huge, &needle_w, 8, sharded_default),
            (&huge, &needle_w_2n, 8, EngineKind::Stream),
            (&large, &needle_w_2n, 8, EngineKind::Stream),
            // 2. Unbounded timing, small graph: backtrack skips the index.
            (&tiny, &unbounded, 1, EngineKind::Backtrack),
            (&tiny, &unbounded, 8, EngineKind::Backtrack),
            (&small, &unbounded, 8, EngineKind::Backtrack),
            // ...but bounded timing makes the index worth building (the
            // 4-node budget keeps the stream fast path out).
            (&tiny, &loose_w_4n, 1, EngineKind::Windowed),
            (&small, &loose_w_4n, 8, EngineKind::Windowed),
            // 3. At/above DISTRIBUTED_MIN_EVENTS with bounded reach and
            // more than one worker: counting leaves the process (the
            // thread budget becomes the worker count). One thread means
            // one worker — nothing to distribute — so the same graph
            // falls through to the sharded rule; stream eligibility
            // still outranks everything.
            (&mega, &loose_w4, 8, EngineKind::distributed(8, DEFAULT_SHARD_EVENTS)),
            (&mega, &loose_c, 2, EngineKind::distributed(2, DEFAULT_SHARD_EVENTS)),
            (&mega, &loose_w4, 1, sharded_default),
            (&mega, &unbounded, 8, EngineKind::Parallel),
            (&mega, &loose_w, 8, EngineKind::Stream),
            // 4. At/above SHARDED_MIN_EVENTS with bounded reach — and no
            // stream eligibility: sharded (thread budget notwithstanding;
            // threads go within-shard).
            (&huge, &loose_w4, 1, sharded_default),
            (&huge, &loose_w4, 8, sharded_default),
            (&huge, &needle_w4, 8, sharded_default),
            (&huge, &loose_c, 8, sharded_default),
            // ...an unbounded reach leaves nothing to shard by: parallel.
            (&huge, &unbounded, 8, EngineKind::Parallel),
            // ...duration-aware ΔC bounds the reach via the graph's max
            // event duration (zero here), so the huge graph still shards.
            (&huge, &aware_c, 8, sharded_default),
            // 5. Large graph + threads + enough work per window: parallel.
            (&large, &loose_w4, 8, EngineKind::Parallel),
            (&large, &loose_c, 8, EngineKind::Parallel),
            (&large, &unbounded, 8, EngineKind::Parallel),
            // ...tight ΔW starves the walks: stay serial windowed.
            (&large, &needle_w4, 8, EngineKind::Windowed),
            // ...duration-aware ΔC: config-only reach is unbounded, so
            // below the sharded threshold the occupancy heuristic sees
            // infinite windows and goes parallel.
            (&large, &aware_c, 8, EngineKind::Parallel),
            // 6. One thread below the sharded threshold: always serial.
            (&large, &loose_w4, 1, EngineKind::Windowed),
            (&large, &aware_c, 1, EngineKind::Windowed),
        ];
        for &(g, cfg, threads, expected) in table {
            let got = auto_select(g, cfg, threads);
            assert_eq!(
                got,
                expected,
                "m={} timing={} threads={threads}",
                g.num_events(),
                cfg.timing
            );
            assert_eq!(
                EngineKind::Auto.engine_for(g, cfg, threads).name(),
                expected.engine_for(g, cfg, threads).name()
            );
            // The resolver never falls back to the approximate sampler
            // on its own: estimation is an explicit caller choice.
            assert!(!matches!(got, EngineKind::Sampling { .. }));
        }
        // Explicit approximate/sharded/distributed kinds resolve to
        // their engines with parameters intact, bypassing the table.
        assert_eq!(EngineKind::sampling(32, 5).engine_for(&tiny, &loose_w, 4).name(), "sampling");
        assert_eq!(EngineKind::sharded(64, 2).engine_for(&tiny, &loose_w, 4).name(), "sharded");
        assert_eq!(sharded_default.engine_for(&huge, &loose_w, 8).name(), "sharded");
        assert_eq!(
            EngineKind::distributed(2, 64).engine_for(&tiny, &loose_w, 4).name(),
            "distributed"
        );
    }

    /// [`explain_auto_select`] shows its working: the chosen kind always
    /// equals [`auto_select`]'s, the fired rule matches the doc table,
    /// and the measured inputs land in the rendered text.
    #[test]
    fn explanations_match_the_selection() {
        let tiny = tiny();
        let large = sized(4096, 40_000);
        let huge = sized(SHARDED_MIN_EVENTS, 4_000_000);
        let loose_w = EnumConfig::new(3, 3).with_timing(Timing::only_w(3_000));
        let loose_w4 = EnumConfig::new(4, 4).with_timing(Timing::only_w(3_000));
        let unbounded = EnumConfig::new(3, 3);
        for (g, cfg, threads, rule) in [
            (&tiny, &loose_w, 1, 1u8),
            (&tiny, &unbounded, 8, 2),
            (&huge, &loose_w4, 1, 4),
            (&large, &loose_w4, 8, 5),
            (&large, &loose_w4, 1, 6),
        ] {
            let explain = explain_auto_select(g, cfg, threads);
            assert_eq!(explain.chosen, auto_select(g, cfg, threads), "rule {rule}");
            assert_eq!(explain.rule, rule);
            assert_eq!(explain.num_events, g.num_events());
            assert_eq!(explain.threads, threads);
            let text = explain.to_string();
            assert!(text.contains(&format!("auto-select: {} (rule {rule})", explain.chosen)));
            assert!(text.contains(&format!("num_events: {}", g.num_events())));
        }
        // Unbounded timing renders an infinite window occupancy.
        let explain = explain_auto_select(&tiny, &unbounded, 1);
        assert!(explain.unbounded_timing && !explain.bounded_reach);
        assert!(explain.expected_window_events.is_infinite());
        assert!(explain.to_string().contains("inf (unbounded timing)"));
    }

    #[test]
    fn capability_flags_are_coherent() {
        assert!(!BacktrackEngine.capabilities().parallel);
        assert!(!BacktrackEngine.capabilities().windowed_pruning);
        assert!(WindowedEngine.capabilities().windowed_pruning);
        let par = ParallelEngine::new(4);
        assert!(par.capabilities().parallel);
        assert!(par.capabilities().windowed_pruning);
        assert!(!ParallelEngine::over_backtrack(4).capabilities().windowed_pruning);
        let samp = SamplingEngine::new(8, 1);
        assert!(!samp.capabilities().parallel);
        assert!(samp.capabilities().windowed_pruning);
        assert!(!StreamEngine.capabilities().parallel);
        assert!(StreamEngine.capabilities().windowed_pruning);
        assert!(StreamEngine.capabilities().deterministic_enumeration);
        assert!(StreamEngine.capabilities().supports_signature_filter);
        let shard = ShardedEngine::new(128);
        assert!(!shard.capabilities().parallel);
        assert!(shard.capabilities().windowed_pruning);
        assert!(shard.capabilities().deterministic_enumeration);
        assert!(shard.with_threads(4).capabilities().parallel);
        let dist = DistributedEngine::new(2);
        assert!(dist.capabilities().parallel);
        assert!(dist.capabilities().windowed_pruning);
        assert!(dist.capabilities().deterministic_enumeration);
        assert!(samp.with_threads(4).capabilities().parallel);
    }

    #[test]
    fn engines_agree_on_a_toy_graph() {
        let g = tiny();
        let cfg = EnumConfig::new(3, 4).with_timing(Timing::only_w(30));
        let reference = BacktrackEngine.count(&g, &cfg);
        for kind in EngineKind::CONCRETE {
            let counts = kind.count(&g, &cfg, 4);
            assert_eq!(counts, reference, "engine {kind}");
        }
        assert_eq!(EngineKind::Auto.count(&g, &cfg, 4), reference);
    }

    #[test]
    fn exact_reports_have_zero_width_intervals() {
        let g = tiny();
        let cfg = EnumConfig::new(2, 4).with_timing(Timing::only_w(30));
        for kind in EngineKind::CONCRETE {
            let report = kind.report(&g, &cfg, 2);
            assert!(report.exact, "engine {kind}");
            assert!(report.total.is_exact());
            assert_eq!(report.counts, kind.count(&g, &cfg, 2));
            for (sig, e) in report.iter() {
                assert!(e.is_exact());
                assert_eq!(e.point as u64, report.counts.get(sig));
            }
        }
        assert!(!EngineKind::sampling(16, 7).report(&g, &cfg, 1).exact);
    }

    #[test]
    fn parallel_config_defaults() {
        let cfg = ParallelConfig::new(0);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.serial_fallback_events, SERIAL_FALLBACK_EVENTS);
        assert_eq!(cfg.steal_chunk, DEFAULT_STEAL_CHUNK);
    }
}
