//! Pluggable counting engines.
//!
//! Every motif configuration in the paper ultimately runs the same
//! abstract job — *enumerate time-ordered single-component event
//! sequences under ΔC/ΔW pruning, filter, canonicalise, count* — but the
//! profitable execution strategy varies with the workload: graph size,
//! timing tightness, and available cores. This module makes the strategy
//! a value: a [`CountEngine`] trait with three interchangeable
//! implementations, selectable programmatically via [`EngineKind`] or
//! from the CLI via `--engine`.
//!
//! | engine | strategy | best at |
//! |---|---|---|
//! | [`BacktrackEngine`] | serial walk, plain node-index scans | tiny graphs, unbounded timing |
//! | [`WindowedEngine`] | serial walk, [`WindowIndex`](tnm_graph::WindowIndex) binary-search pruning | bounded ΔC/ΔW on one core |
//! | [`ParallelEngine`] | work-stealing workers over the windowed index | large graphs, many cores |
//!
//! All engines are **exact** and produce identical [`MotifCounts`] for
//! identical [`EnumConfig`]s — the cross-engine equivalence suite
//! (`tests/engine_equivalence.rs`) enforces this for all four paper
//! models. [`EngineKind::Auto`] picks a sensible engine from the graph
//! size and thread budget and is what the legacy
//! [`count_motifs`](crate::count_motifs) /
//! [`count_motifs_parallel`](crate::count_motifs_parallel) wrappers use.
//!
//! The trait is deliberately narrow (count, enumerate, name,
//! capabilities) so future backends — sampling estimators, sharded
//! out-of-core counting — slot in without touching call sites.

mod backtrack;
mod config;
mod parallel;
mod walker;
mod windowed;

pub use backtrack::BacktrackEngine;
pub use config::{EnumConfig, MotifInstance};
pub use parallel::{ParallelConfig, ParallelEngine, DEFAULT_STEAL_CHUNK, SERIAL_FALLBACK_EVENTS};
pub use windowed::WindowedEngine;

use crate::count::MotifCounts;
use tnm_graph::TemporalGraph;

/// What an engine can do; used by callers to pick and by diagnostics to
/// explain a choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCaps {
    /// Uses more than one thread in `count`.
    pub parallel: bool,
    /// Prunes candidates through the time-windowed index.
    pub windowed_pruning: bool,
    /// `enumerate` visits instances in the serial start-event order.
    pub deterministic_enumeration: bool,
    /// Honors [`EnumConfig::signature_filter`] with prefix pruning.
    pub supports_signature_filter: bool,
}

/// A motif counting engine: one execution strategy for the shared
/// enumeration semantics defined by [`EnumConfig`].
pub trait CountEngine: Send + Sync {
    /// Stable engine name (what `--engine` parses, what reports print).
    fn name(&self) -> &'static str;

    /// Capability flags.
    fn capabilities(&self) -> EngineCaps;

    /// Counts instances per canonical signature.
    fn count(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts;

    /// Invokes `callback` once per instance (events in time order).
    fn enumerate(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
        callback: &mut dyn FnMut(&MotifInstance<'_>),
    );
}

/// Engine selection, parseable from CLI strings (`--engine windowed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// [`BacktrackEngine`].
    Backtrack,
    /// [`WindowedEngine`].
    Windowed,
    /// [`ParallelEngine`] over the windowed index.
    Parallel,
    /// Pick per-workload: parallel-windowed for graphs with at least
    /// [`SERIAL_FALLBACK_EVENTS`] events when more than one thread is
    /// available, serial windowed otherwise.
    #[default]
    Auto,
}

impl EngineKind {
    /// Every concrete kind (excludes `Auto`), for sweeps and benches.
    pub const CONCRETE: [EngineKind; 3] =
        [EngineKind::Backtrack, EngineKind::Windowed, EngineKind::Parallel];

    /// Instantiates the engine, resolving `Auto` against `graph` and the
    /// `threads` budget.
    pub fn engine_for(self, graph: &TemporalGraph, threads: usize) -> Box<dyn CountEngine> {
        match self {
            EngineKind::Backtrack => Box::new(BacktrackEngine),
            EngineKind::Windowed => Box::new(WindowedEngine),
            EngineKind::Parallel => Box::new(ParallelEngine::new(threads)),
            EngineKind::Auto => {
                let big_enough = graph.num_events() >= SERIAL_FALLBACK_EVENTS;
                if threads > 1 && big_enough {
                    Box::new(ParallelEngine::new(threads))
                } else {
                    Box::new(WindowedEngine)
                }
            }
        }
    }

    /// Counts with the engine this kind resolves to.
    pub fn count(self, graph: &TemporalGraph, cfg: &EnumConfig, threads: usize) -> MotifCounts {
        self.engine_for(graph, threads).count(graph, cfg)
    }
}

impl std::str::FromStr for EngineKind {
    type Err = ParseEngineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "backtrack" => Ok(EngineKind::Backtrack),
            "windowed" => Ok(EngineKind::Windowed),
            "parallel" => Ok(EngineKind::Parallel),
            "auto" => Ok(EngineKind::Auto),
            _ => Err(ParseEngineError { got: s.to_string() }),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EngineKind::Backtrack => "backtrack",
            EngineKind::Windowed => "windowed",
            EngineKind::Parallel => "parallel",
            EngineKind::Auto => "auto",
        };
        f.write_str(s)
    }
}

/// Error from parsing an engine name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineError {
    got: String,
}

impl std::fmt::Display for ParseEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown engine `{}` (expected backtrack, windowed, parallel, or auto)", self.got)
    }
}

impl std::error::Error for ParseEngineError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use tnm_graph::TemporalGraphBuilder;

    fn tiny() -> TemporalGraph {
        TemporalGraphBuilder::new().event(0, 1, 10).event(1, 2, 20).event(2, 3, 30).build().unwrap()
    }

    #[test]
    fn kind_parses_and_displays() {
        for kind in
            [EngineKind::Backtrack, EngineKind::Windowed, EngineKind::Parallel, EngineKind::Auto]
        {
            let round: EngineKind = kind.to_string().parse().unwrap();
            assert_eq!(round, kind);
        }
        assert_eq!("WINDOWED".parse::<EngineKind>().unwrap(), EngineKind::Windowed);
        assert!("bogus".parse::<EngineKind>().is_err());
    }

    #[test]
    fn auto_resolves_by_size_and_threads() {
        let g = tiny();
        // Tiny graph: serial windowed regardless of thread budget.
        assert_eq!(EngineKind::Auto.engine_for(&g, 8).name(), "windowed");
        assert_eq!(EngineKind::Auto.engine_for(&g, 1).name(), "windowed");
    }

    #[test]
    fn capability_flags_are_coherent() {
        assert!(!BacktrackEngine.capabilities().parallel);
        assert!(!BacktrackEngine.capabilities().windowed_pruning);
        assert!(WindowedEngine.capabilities().windowed_pruning);
        let par = ParallelEngine::new(4);
        assert!(par.capabilities().parallel);
        assert!(par.capabilities().windowed_pruning);
        assert!(!ParallelEngine::over_backtrack(4).capabilities().windowed_pruning);
    }

    #[test]
    fn engines_agree_on_a_toy_graph() {
        let g = tiny();
        let cfg = EnumConfig::new(3, 4).with_timing(Timing::only_w(30));
        let reference = BacktrackEngine.count(&g, &cfg);
        for kind in EngineKind::CONCRETE {
            let counts = kind.count(&g, &cfg, 4);
            assert_eq!(counts, reference, "engine {kind}");
        }
        assert_eq!(EngineKind::Auto.count(&g, &cfg, 4), reference);
    }

    #[test]
    fn parallel_config_defaults() {
        let cfg = ParallelConfig::new(0);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.serial_fallback_events, SERIAL_FALLBACK_EVENTS);
        assert_eq!(cfg.steal_chunk, DEFAULT_STEAL_CHUNK);
    }
}
