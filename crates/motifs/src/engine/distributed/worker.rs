//! The worker side of the distributed engine: a frame-driven loop any
//! process can run over a pair of byte streams.
//!
//! The `tnm` CLI exposes this as the hidden `tnm worker` subcommand;
//! the coordinator spawns N such processes and speaks the
//! [`protocol`](super::protocol) frames over their stdin/stdout. The
//! loop is deliberately dumb: read a job frame, load the spilled shard
//! it names, count (or enumerate) the shard's **owned** start events
//! with the shared walker, write one reply frame, flush, repeat until a
//! shutdown frame or EOF. All policy — scheduling, rescheduling after a
//! crash, merging, the static-inducedness recheck — lives with the
//! coordinator.
//!
//! A worker never sees the parent graph. The one predicate that needs
//! it, static inducedness, is stripped from the shipped configuration
//! before walking (exactly like the in-process sharded driver) and the
//! instances go back aggregated by their inducedness-relevant structure
//! — `(signature, node set, covered edges)` groups — for the
//! coordinator to filter, one verdict per group.

use super::protocol::{
    decode_job, encode_reply, InducedGroup, ReplyMetrics, WorkerJob, WorkerReply, KIND_JOB,
    KIND_SHUTDOWN,
};
use crate::count::MotifCounts;
use crate::engine::parallel::{work_steal_count, work_steal_map, DEFAULT_STEAL_CHUNK};
use crate::engine::walker::{Walker, WindowedCandidates};
use crate::notation::MotifSignature;
use std::collections::HashMap;
use std::io::{Read, Write};
use tnm_graph::wire::{self, WireError};
use tnm_graph::{window_index::WindowIndex, EventIdx, TemporalGraph};

/// Aggregation key of one induced group: sorted node set plus sorted
/// covered directed edges (parent-id space).
type GroupKey = (MotifSignature, Vec<u32>, Vec<(u32, u32)>);

/// Runs the worker loop until a shutdown frame or a clean EOF on
/// `input`. `exit_after` is fault injection for the crash-rescheduling
/// tests: after serving that many jobs the loop returns early, which
/// closes the process's streams and looks to the coordinator exactly
/// like a mid-run crash (the CLI wires it to the
/// `TNM_WORKER_EXIT_AFTER` environment variable).
///
/// Errors are returned, not swallowed: a worker that cannot decode a
/// job or read its shard file exits non-zero, and the coordinator
/// treats the dead worker like any other crash.
pub fn run_worker<R: Read, W: Write>(
    mut input: R,
    mut output: W,
    exit_after: Option<usize>,
) -> Result<(), WireError> {
    let mut served = 0usize;
    loop {
        let Some((kind, payload)) = wire::read_frame(&mut input, wire::MAX_FRAME_PAYLOAD)? else {
            return Ok(()); // coordinator closed the stream between jobs
        };
        match kind {
            KIND_SHUTDOWN => return Ok(()),
            KIND_JOB => {
                let t0 = std::time::Instant::now();
                let job = decode_job(&payload)?;
                // A traced job installs its context for the duration of
                // the walk: every span the walk opens (on this thread or
                // the work-stealing threads it spawns) carries the trace
                // id and ships back for the coordinator to stitch.
                if let Some(ctx) = job.trace {
                    tnm_obs::set_trace(Some(ctx));
                }
                let reply = {
                    let _span = tnm_obs::span!("walk.shard", shard = job.shard_id);
                    serve_job(&job)?
                };
                let spans = match job.trace {
                    Some(ctx) => {
                        tnm_obs::set_trace(None);
                        normalize_spans(tnm_obs::take_trace_spans(ctx.trace_id))
                    }
                    None => Vec::new(),
                };
                let metrics = ReplyMetrics {
                    wall_ns: t0.elapsed().as_nanos() as u64,
                    // Per-job delta: snapshot the worker's registry and
                    // clear it so the next job starts from zero. The
                    // coordinator re-enables obs in spawned workers via
                    // `TNM_OBS=1` (wired by the CLI's worker entry).
                    obs: if tnm_obs::enabled() {
                        let snap = tnm_obs::global().snapshot();
                        tnm_obs::global().reset();
                        snap
                    } else {
                        Default::default()
                    },
                    spans,
                };
                for (kind, body) in encode_reply(&reply, &metrics) {
                    wire::write_frame(&mut output, kind, &body)?;
                }
                output.flush()?;
                served += 1;
                if exit_after.is_some_and(|n| served >= n) {
                    return Ok(()); // injected fault: vanish mid-run
                }
            }
            other => {
                return Err(WireError::Malformed(format!("unexpected frame kind {other}")));
            }
        }
    }
}

/// Prepares captured trace spans for shipping: span ids become dense
/// and 1-based (internal parent links follow; links to spans outside
/// the capture drop to 0, for the coordinator to re-attach under the
/// job's parent), and start times rebase to the earliest span so the
/// coordinator can shift them into its own clock via the reply's wall
/// time.
fn normalize_spans(mut spans: Vec<tnm_obs::SpanRecord>) -> Vec<tnm_obs::SpanRecord> {
    let Some(base) = spans.iter().map(|s| s.start_ns).min() else {
        return spans;
    };
    let ids: HashMap<u64, u64> =
        spans.iter().enumerate().map(|(i, s)| (s.span_id, i as u64 + 1)).collect();
    for s in &mut spans {
        s.span_id = ids[&s.span_id];
        s.parent_id = ids.get(&s.parent_id).copied().unwrap_or(0);
        s.start_ns -= base;
    }
    spans
}

/// Loads the job's shard and counts (or enumerates) its owned starts.
fn serve_job(job: &WorkerJob) -> Result<WorkerReply, WireError> {
    let file = std::fs::File::open(&job.shard_path)?;
    let events = tnm_graph::io::read_events_raw(file).map_err(|e| match e {
        tnm_graph::GraphError::Decode(w) => w,
        tnm_graph::GraphError::Io(io) => WireError::Io(io),
        other => WireError::Malformed(format!("shard file rejected: {other}")),
    })?;
    // One validation pass: node ids inside the declared space and no
    // self-loops (the walker's digit resolution assumes both; a corrupt
    // record must fail loudly, never count wrongly). Time-sortedness is
    // asserted — in release builds too — by `from_sorted_events`, so it
    // is deliberately not re-scanned here.
    if let Some(bad) = events
        .iter()
        .find(|e| e.src.0 >= job.num_nodes || e.dst.0 >= job.num_nodes || e.is_self_loop())
    {
        return Err(WireError::Malformed(format!(
            "shard event {bad} is a self-loop or outside the declared node space {}",
            job.num_nodes
        )));
    }
    let own = job.own_lo as usize..job.own_hi as usize;
    if own.end > events.len() {
        return Err(WireError::Malformed(format!(
            "owned range {own:?} exceeds the shard's {} events",
            events.len()
        )));
    }
    let graph = TemporalGraph::from_sorted_events(events, job.num_nodes);
    // Same split as the in-process sharded driver: the walk never
    // evaluates static inducedness — a time slice cannot answer
    // whole-timeline `has_edge` — so either the caller did not ask for
    // it, or aggregated induced groups go back for the coordinator's
    // per-group recheck.
    let mut local_cfg = job.cfg.clone();
    local_cfg.static_induced = false;
    let index = WindowIndex::build(&graph);
    let threads = (job.threads as usize).max(1);
    if job.want_induced {
        // Aggregate by inducedness-relevant structure: the verdict
        // depends only on (node set, covered edges), so one group per
        // distinct combination bounds the reply by structure, not by
        // instance count. Shard node ids are parent ids already.
        // Per-worker maps merge with u64 additions (commutative), and
        // the final sort makes the reply bytes deterministic at any
        // thread count.
        let tally = |map: &mut HashMap<GroupKey, u64>, sig: MotifSignature, evs: &[EventIdx]| {
            let mut nodes: Vec<u32> = Vec::with_capacity(2 * evs.len());
            let mut covered: Vec<(u32, u32)> = Vec::with_capacity(evs.len());
            for &idx in evs {
                let e = graph.event(idx);
                nodes.push(e.src.0);
                nodes.push(e.dst.0);
                covered.push((e.src.0, e.dst.0));
            }
            nodes.sort_unstable();
            nodes.dedup();
            covered.sort_unstable();
            covered.dedup();
            *map.entry((sig, nodes, covered)).or_insert(0) += 1;
        };
        let mut groups: HashMap<GroupKey, u64> = HashMap::new();
        if threads > 1 && own.len() > 1 {
            let base = own.start;
            let locals = work_steal_map(
                own.len(),
                threads,
                DEFAULT_STEAL_CHUNK,
                || {
                    (
                        Walker::new(&graph, &local_cfg, WindowedCandidates::new(&index)),
                        HashMap::<GroupKey, u64>::new(),
                    )
                },
                |state, claimed| {
                    let (walker, map) = state;
                    walker.run_range(base + claimed.start..base + claimed.end, |inst| {
                        tally(map, inst.signature, inst.events)
                    });
                },
            );
            for (_, local) in locals {
                for (key, n) in local {
                    *groups.entry(key).or_insert(0) += n;
                }
            }
        } else {
            let mut walker = Walker::new(&graph, &local_cfg, WindowedCandidates::new(&index));
            walker.run_range(own, |inst| tally(&mut groups, inst.signature, inst.events));
        }
        let mut groups: Vec<InducedGroup> = groups
            .into_iter()
            .map(|((signature, nodes, covered), count)| InducedGroup {
                signature,
                nodes,
                covered,
                count,
            })
            .collect();
        // Deterministic reply bytes regardless of hash-map order.
        groups.sort_unstable_by(|a, b| {
            (a.signature, &a.nodes, &a.covered).cmp(&(b.signature, &b.nodes, &b.covered))
        });
        Ok(WorkerReply::Induced { shard_id: job.shard_id, groups })
    } else if threads > 1 && own.len() > 1 {
        let counts = work_steal_count(
            &graph,
            &local_cfg,
            own,
            threads,
            DEFAULT_STEAL_CHUNK,
            || WindowedCandidates::new(&index),
            |local, inst| local.add(inst.signature, 1),
        );
        Ok(WorkerReply::Counts { shard_id: job.shard_id, counts })
    } else {
        let mut counts = MotifCounts::new();
        let mut walker = Walker::new(&graph, &local_cfg, WindowedCandidates::new(&index));
        walker.run_range(own, |inst| counts.add(inst.signature, 1));
        Ok(WorkerReply::Counts { shard_id: job.shard_id, counts })
    }
}

#[cfg(test)]
mod tests {
    use super::super::protocol::{encode_job, read_reply};
    use super::*;
    use crate::constraints::Timing;
    use crate::engine::{CountEngine, EnumConfig, WindowedEngine};
    use tnm_graph::TemporalGraphBuilder;

    fn graph() -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..60u32 {
            b.push(tnm_graph::Event::new(i % 7, (i % 7 + 1 + i % 3) % 8, (i / 2) as i64));
        }
        b.build().unwrap()
    }

    fn spill(graph: &TemporalGraph, dir: &std::path::Path) -> String {
        let path = dir.join("whole.events");
        let file = std::fs::File::create(&path).unwrap();
        tnm_graph::io::write_events_raw(graph.events(), file).unwrap();
        path.to_string_lossy().into_owned()
    }

    /// Drives the loop in-process over byte buffers: one whole-graph
    /// "shard" must reproduce the windowed engine's counts exactly, and
    /// the loop must honor shutdown framing.
    #[test]
    fn worker_loop_counts_and_shuts_down() {
        let g = graph();
        let dir = std::env::temp_dir().join(format!("tnm-worker-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(4, 9));
        let job = WorkerJob {
            shard_id: 3,
            shard_path: spill(&g, &dir),
            num_nodes: g.num_nodes(),
            own_lo: 0,
            own_hi: g.num_events() as u64,
            threads: 1,
            want_induced: false,
            cfg: cfg.clone(),
            trace: None,
        };
        let mut input = Vec::new();
        wire::write_frame(&mut input, KIND_JOB, &encode_job(&job)).unwrap();
        wire::write_frame(&mut input, KIND_SHUTDOWN, &[]).unwrap();
        let mut output = Vec::new();
        run_worker(input.as_slice(), &mut output, None).unwrap();
        let mut cursor = output.as_slice();
        let (reply, metrics) =
            read_reply(&mut cursor, wire::MAX_FRAME_PAYLOAD).unwrap().expect("one reply");
        match reply {
            WorkerReply::Counts { shard_id, counts } => {
                assert_eq!(shard_id, 3);
                assert_eq!(counts, WindowedEngine.count(&g, &cfg));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert!(metrics.wall_ns > 0, "wall time is always measured");
        assert!(metrics.obs.is_empty(), "no obs snapshot unless enabled");
        assert!(metrics.spans.is_empty(), "no spans unless the job is traced");
        assert!(read_reply(&mut cursor, wire::MAX_FRAME_PAYLOAD).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A traced job collects the walk's spans (even with global obs
    /// off), normalizes them for shipping — dense 1-based ids,
    /// zero-based start times, roots with parent 0 — and clears the
    /// trace before the next job.
    #[test]
    fn traced_jobs_ship_normalized_spans() {
        let _guard = tnm_obs::test_guard();
        tnm_obs::set_enabled(false);
        tnm_obs::drain_spans();
        let g = graph();
        let dir = std::env::temp_dir().join(format!("tnm-worker-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(4, 9));
        let ctx = tnm_obs::TraceCtx { trace_id: 0xFACE, parent_span: 7 };
        let job = WorkerJob {
            shard_id: 5,
            shard_path: spill(&g, &dir),
            num_nodes: g.num_nodes(),
            own_lo: 0,
            own_hi: g.num_events() as u64,
            threads: 2,
            want_induced: false,
            cfg,
            trace: Some(ctx),
        };
        let mut input = Vec::new();
        wire::write_frame(&mut input, KIND_JOB, &encode_job(&job)).unwrap();
        let mut output = Vec::new();
        run_worker(input.as_slice(), &mut output, None).unwrap();
        let (_, metrics) =
            read_reply(output.as_slice(), wire::MAX_FRAME_PAYLOAD).unwrap().expect("one reply");
        let spans = &metrics.spans;
        assert!(!spans.is_empty(), "the traced walk records spans with obs off");
        assert!(spans.iter().all(|s| s.trace_id == ctx.trace_id));
        assert!(spans.iter().any(|s| s.name == "walk.shard"));
        assert_eq!(spans.iter().map(|s| s.start_ns).min(), Some(0), "times are rebased");
        let mut ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=spans.len() as u64).collect::<Vec<_>>(), "dense 1-based ids");
        for s in spans {
            assert!(
                s.parent_id == 0 || ids.binary_search(&s.parent_id).is_ok(),
                "parents resolve within the shipped set or drop to 0"
            );
        }
        assert!(tnm_obs::current_trace().is_none(), "the trace is cleared after the job");
        assert!(tnm_obs::drain_spans().is_empty(), "shipped spans leave the collector");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Induced jobs return raw instances with inducedness stripped —
    /// exactly the non-induced instance stream, for the coordinator to
    /// filter against the parent.
    #[test]
    fn induced_jobs_return_raw_instances() {
        let g = graph();
        let dir = std::env::temp_dir().join(format!("tnm-worker-inst-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(8)).with_static_induced(true);
        let job = WorkerJob {
            shard_id: 0,
            shard_path: spill(&g, &dir),
            num_nodes: g.num_nodes(),
            own_lo: 0,
            own_hi: g.num_events() as u64,
            threads: 2,
            want_induced: true,
            cfg: cfg.clone(),
            trace: None,
        };
        let mut input = Vec::new();
        wire::write_frame(&mut input, KIND_JOB, &encode_job(&job)).unwrap();
        let mut output = Vec::new();
        run_worker(input.as_slice(), &mut output, None).unwrap();
        let (reply, _) = read_reply(output.as_slice(), wire::MAX_FRAME_PAYLOAD).unwrap().unwrap();
        let mut stripped = cfg.clone();
        stripped.static_induced = false;
        match reply {
            WorkerReply::Induced { groups, .. } => {
                // Group counts sum to the non-induced instance total
                // (aggregation loses nothing), each group is internally
                // consistent, and the order is deterministic.
                let total: u64 = groups.iter().map(|g| g.count).sum();
                assert_eq!(total, WindowedEngine.count(&g, &stripped).total());
                for gr in &groups {
                    assert!(gr.nodes.windows(2).all(|w| w[0] < w[1]), "nodes sorted+deduped");
                    assert!(gr.covered.windows(2).all(|w| w[0] < w[1]), "covered sorted+deduped");
                    assert!(gr.count > 0);
                    for &(a, b) in &gr.covered {
                        assert!(gr.nodes.contains(&a) && gr.nodes.contains(&b));
                    }
                }
                assert!(groups.windows(2).all(|w| (w[0].signature, &w[0].nodes, &w[0].covered)
                    < (w[1].signature, &w[1].nodes, &w[1].covered)));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Fault injection: with `exit_after = 1` the loop serves exactly
    /// one job and returns, leaving the second job unanswered — the
    /// crash shape the coordinator's rescheduler is tested against.
    #[test]
    fn exit_after_drops_the_stream_mid_run() {
        let g = graph();
        let dir = std::env::temp_dir().join(format!("tnm-worker-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = EnumConfig::new(2, 2).with_timing(Timing::only_w(5));
        let job = WorkerJob {
            shard_id: 0,
            shard_path: spill(&g, &dir),
            num_nodes: g.num_nodes(),
            own_lo: 0,
            own_hi: 4,
            threads: 1,
            want_induced: false,
            cfg,
            trace: None,
        };
        let mut input = Vec::new();
        wire::write_frame(&mut input, KIND_JOB, &encode_job(&job)).unwrap();
        wire::write_frame(&mut input, KIND_JOB, &encode_job(&job)).unwrap();
        let mut output = Vec::new();
        run_worker(input.as_slice(), &mut output, Some(1)).unwrap();
        let mut cursor = output.as_slice();
        assert!(read_reply(&mut cursor, wire::MAX_FRAME_PAYLOAD).unwrap().is_some());
        assert!(
            read_reply(&mut cursor, wire::MAX_FRAME_PAYLOAD).unwrap().is_none(),
            "the second job must never be answered"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Bad jobs fail loudly: missing shard file, out-of-range owned
    /// range, and unknown frame kinds all error instead of replying.
    #[test]
    fn malformed_jobs_error() {
        let g = graph();
        let dir = std::env::temp_dir().join(format!("tnm-worker-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = EnumConfig::new(2, 2).with_timing(Timing::only_w(5));
        let missing = WorkerJob {
            shard_id: 0,
            shard_path: dir.join("nope.events").to_string_lossy().into_owned(),
            num_nodes: g.num_nodes(),
            own_lo: 0,
            own_hi: 1,
            threads: 1,
            want_induced: false,
            cfg: cfg.clone(),
            trace: None,
        };
        let mut input = Vec::new();
        wire::write_frame(&mut input, KIND_JOB, &encode_job(&missing)).unwrap();
        assert!(run_worker(input.as_slice(), &mut Vec::new(), None).is_err());

        let oversized = WorkerJob {
            shard_path: spill(&g, &dir),
            own_hi: g.num_events() as u64 + 7,
            ..missing.clone()
        };
        let mut input = Vec::new();
        wire::write_frame(&mut input, KIND_JOB, &encode_job(&oversized)).unwrap();
        assert!(run_worker(input.as_slice(), &mut Vec::new(), None).is_err());

        let mut input = Vec::new();
        wire::write_frame(&mut input, 99, &[]).unwrap();
        assert!(matches!(
            run_worker(input.as_slice(), &mut Vec::new(), None),
            Err(WireError::Malformed(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
