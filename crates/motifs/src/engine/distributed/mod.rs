//! [`DistributedEngine`] — exact counting across **process boundaries**:
//! a coordinator that plans time-slice shards, spills them to disk, and
//! farms them out to worker processes over a framed wire protocol.
//!
//! This is the first engine where counting leaves the coordinator's
//! address space — the stepping stone from the sharded engine's
//! out-of-core runs (PR 3) to multi-machine merging. The division of
//! labor:
//!
//! * **Coordinator** (this module): plans shards with
//!   [`tnm_graph::shard::plan_shards`] (owned start ranges, tie-safe
//!   left pads, reach-bounded halos), spills every shard up front
//!   through the [`ShardStore`](tnm_graph::ShardStore) (binary
//!   [`io::write_events_raw`](tnm_graph::io::write_events_raw) blocks),
//!   spawns N worker processes (the hidden `tnm worker` subcommand),
//!   and drives a work queue over them — one coordinator thread per
//!   worker, each sending [`protocol`] job frames on the child's stdin
//!   and reading reply frames from its stdout. Per-shard results merge
//!   into one [`MotifCounts`]; merging is commutative, so scheduling
//!   order never affects the totals.
//! * **Worker** ([`run_worker`]): loads the shard file it is told
//!   about, rebuilds the slice as an independent graph in the parent's
//!   node-id space, and walks **only the owned start events** — the
//!   same ownership partition that makes the in-process sharded engine
//!   exact.
//!
//! ## Crash detection and rescheduling
//!
//! A worker that dies mid-run (crash, kill, injected fault) surfaces as
//! an I/O or framing error on its pipes. The coordinator thread
//! observing the failure **requeues the in-flight shard** and retires;
//! surviving workers drain the queue, so a run completes with identical
//! counts as long as one worker lives. Replies are applied only when a
//! frame decodes completely, and a job is requeued only when its reply
//! never did — each shard is counted exactly once. If every worker dies
//! with shards outstanding, the run panics rather than undercounting.
//!
//! ## The one whole-timeline predicate
//!
//! Static inducedness asks whether an edge exists *anywhere in the
//! timeline* — a question a shard (and therefore a worker) cannot
//! answer. Induced jobs ship with the flag stripped; workers return
//! their instances **aggregated by inducedness-relevant structure** —
//! `(signature, node set, covered edges)` groups with counts, since the
//! verdict depends on nothing else — and the coordinator rechecks each
//! *group* once against the parent graph through the shared
//! [`global_projection_cache`] before tallying. The same split as the
//! in-process sharded driver, moved across the wire, with reply sizes
//! bounded by distinct structures instead of instance counts.
//!
//! ## Worker binary resolution
//!
//! Workers are `tnm worker` processes. The binary resolves from, in
//! order: the `TNM_WORKER_BIN` environment variable, a `tnm` binary
//! next to the current executable, or one in its parent directory (the
//! `target/<profile>/deps/<test>` → `target/<profile>/tnm` layout cargo
//! gives test and bench executables). When no binary resolves — an
//! embedding application that never installed the CLI — the engine
//! falls back to the in-process [`ShardedEngine`], which is exact, and
//! reports `workers_spawned: 0` so tests that *require* the wire path
//! can tell the difference.

pub(crate) mod protocol;
mod worker;

pub use worker::run_worker;

use crate::count::MotifCounts;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::engine::{CountEngine, EngineCaps, ShardedEngine, WindowedEngine};
use crate::induced::induced_cover_ok;
use protocol::{WorkerJob, WorkerReply, KIND_JOB, KIND_SHUTDOWN};
use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tnm_graph::shard::{plan_shards, ShardGoal, ShardPlan, ShardStore};
use tnm_graph::static_proj::global_projection_cache;
use tnm_graph::wire::{self, WireError};
use tnm_graph::TemporalGraph;
use tnm_graph::{Edge, NodeId};

/// Default worker-process count (CLI `--engine distributed` without
/// `--workers`). Two is the smallest count that exercises real
/// cross-process scheduling; production runs size this to cores or
/// machines.
pub const DEFAULT_WORKERS: usize = 2;

/// Tuning of the distributed executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedConfig {
    /// Worker processes to spawn (clamped to at least 1, and never more
    /// than the plan has shards).
    pub workers: usize,
    /// Target owned start events per shard (clamped to at least 1).
    pub shard_events: usize,
    /// Thread budget **inside each worker process** for the
    /// within-shard work-stealing walk (1 = serial workers).
    pub worker_threads: usize,
    /// Explicit worker binary override (`None` = resolve automatically).
    pub worker_bin: Option<PathBuf>,
    /// Fault injection `(worker index, jobs before exit)` — see
    /// [`DistributedEngine::with_fault_after`].
    pub fault_after: Option<(usize, usize)>,
}

/// Observability of one distributed run, for the crash-rescheduling and
/// smoke tests. Worker losses and job reschedules are read from the obs
/// registry (`distributed.workers_lost` / `distributed.jobs_rescheduled`
/// counters) — this struct carries only what the registry cannot: the
/// run's plan geometry and spawn outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedRunStats {
    /// Shards the plan produced.
    pub shards: usize,
    /// Worker processes successfully spawned (0 = the run stayed
    /// in-process: degenerate single-shard plan or no worker binary).
    pub workers_spawned: usize,
}

/// Exact distributed counting engine. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedEngine {
    config: DistributedConfig,
}

impl DistributedEngine {
    /// A distributed engine with `workers` worker processes and the
    /// default shard size.
    pub fn new(workers: usize) -> Self {
        DistributedEngine {
            config: DistributedConfig {
                workers: workers.max(1),
                shard_events: crate::engine::DEFAULT_SHARD_EVENTS,
                worker_threads: 1,
                worker_bin: None,
                fault_after: None,
            },
        }
    }

    /// Sets the target owned start events per shard (chainable).
    pub fn with_shard_events(mut self, shard_events: usize) -> Self {
        self.config.shard_events = shard_events.max(1);
        self
    }

    /// Sets the thread budget each worker process uses for its
    /// within-shard work-stealing walk (chainable). Shipped in the job
    /// descriptor; totals are unaffected — the within-worker merge is
    /// the same commutative table merge as [`ParallelEngine`]'s.
    ///
    /// [`ParallelEngine`]: crate::engine::ParallelEngine
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.config.worker_threads = threads.max(1);
        self
    }

    /// Overrides worker-binary resolution with an explicit path
    /// (chainable).
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> Self {
        self.config.worker_bin = Some(bin.into());
        self
    }

    /// Fault injection for tests (chainable): worker `worker` is
    /// spawned with `TNM_WORKER_EXIT_AFTER=jobs`, making it vanish
    /// after serving that many jobs — a deterministic mid-run crash for
    /// the rescheduling tests. Counts must come out identical anyway.
    pub fn with_fault_after(mut self, worker: usize, jobs: usize) -> Self {
        self.config.fault_after = Some((worker, jobs.max(1)));
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &DistributedConfig {
        &self.config
    }

    /// Resolves the worker binary this process would spawn: the
    /// `TNM_WORKER_BIN` environment variable, then a `tnm` binary in
    /// the current executable's directory, then in its parent (cargo's
    /// `deps/` layout for test and bench executables). `None` when no
    /// candidate exists.
    ///
    /// An explicit `TNM_WORKER_BIN` is taken **verbatim**, existence
    /// unchecked — like [`DistributedEngine::with_worker_bin`], an
    /// explicit override that turns out to be wrong must fail loudly at
    /// spawn time, never quietly fall back to the in-process engine.
    pub fn worker_binary() -> Option<PathBuf> {
        if let Some(p) = std::env::var_os("TNM_WORKER_BIN") {
            return Some(PathBuf::from(p));
        }
        let exe = std::env::current_exe().ok()?;
        let name = format!("tnm{}", std::env::consts::EXE_SUFFIX);
        let mut dir = exe.parent()?;
        // Same-profile locations first: the executable's own directory
        // (the CLI spawning itself) and its parent (cargo's
        // `target/<profile>/deps/` layout for tests and benches).
        for _ in 0..2 {
            let candidate = dir.join(&name);
            if candidate.is_file() {
                return Some(candidate);
            }
            dir = dir.parent()?;
        }
        // `dir` is now the profile directory's parent (`target/`).
        // `cargo test` builds bin targets only as test harnesses — it
        // never links the plain `tnm` binary — so a freshly checked-out
        // tree tested with `cargo build --release && cargo test` has
        // the worker only in the sibling `release/` profile.
        for profile in ["release", "debug"] {
            let candidate = dir.join(profile).join(&name);
            if candidate.is_file() {
                return Some(candidate);
            }
        }
        None
    }

    fn plan(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> ShardPlan {
        plan_shards(
            graph,
            cfg.admissible_reach(graph),
            ShardGoal::EventsPerShard(self.config.shard_events),
        )
    }

    /// Counts and reports the run's worker/rescheduling statistics —
    /// what the crash tests assert against.
    pub fn count_with_stats(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
    ) -> (MotifCounts, DistributedRunStats) {
        let plan = {
            let _span = tnm_obs::span!("distributed.plan");
            self.plan(graph, cfg)
        };
        let shards = plan.len();
        let local_stats = DistributedRunStats { shards: shards.max(1), workers_spawned: 0 };
        // A one-shard plan (unbounded reach, or a shard target at or
        // above the graph) would ship the whole log to one worker for
        // nothing: count in-process, like the sharded engine's
        // degenerate path.
        if shards <= 1 {
            return (WindowedEngine.count(graph, cfg), local_stats);
        }
        let bin = match self.config.worker_bin.clone().or_else(Self::worker_binary) {
            Some(b) => b,
            // No worker binary anywhere (library embedding without the
            // CLI): stay exact in-process, with the worker budget
            // recycled as the sharded engine's thread budget so the
            // fallback keeps the job's parallelism. workers_spawned: 0
            // makes this path visible to tests that require the wire.
            None => {
                let threads = self.config.workers * self.config.worker_threads;
                let counts = ShardedEngine::new(self.config.shard_events)
                    .with_threads(threads)
                    .count(graph, cfg);
                return (counts, local_stats);
            }
        };
        // Spill every shard up front; the store's temp dir lives until
        // the end of the run and the files are the workers' inputs.
        let store = {
            let _span = tnm_obs::span!("distributed.spill", shards = shards);
            ShardStore::spill(graph, plan, 1)
                .expect("distributed engine: spilling shards to disk failed")
        };
        let plan = store.plan();
        // The active request trace (if any) rides along in every job
        // frame; workers collect their spans under it and ship them
        // back for stitching.
        let trace = tnm_obs::current_trace();
        let jobs: VecDeque<QueuedJob> = plan
            .shards
            .iter()
            .map(|spec| WorkerJob {
                shard_id: spec.id as u32,
                shard_path: store
                    .shard_file(spec.id)
                    .expect("spill store has files")
                    .to_string_lossy()
                    .into_owned(),
                num_nodes: graph.num_nodes(),
                own_lo: spec.own_local().start as u64,
                own_hi: spec.own_local().end as u64,
                threads: self.config.worker_threads as u32,
                want_induced: cfg.static_induced,
                cfg: cfg.clone(),
                trace,
            })
            .map(|job| QueuedJob { job, attempts: 0, last_error: None })
            .collect();
        // The parent-side projection for induced rechecks, shared with
        // every other consumer through the global cache.
        let projection = cfg.static_induced.then(|| global_projection_cache().get_or_build(graph));
        let n_workers = self.config.workers.min(shards).max(1);

        let queue = Mutex::new(jobs);
        let merged = Mutex::new(MotifCounts::new());
        let pending = AtomicUsize::new(shards);
        let spawned = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..n_workers {
                let bin = &bin;
                let queue = &queue;
                let merged = &merged;
                let pending = &pending;
                let spawned = &spawned;
                let projection = projection.as_deref();
                let fault = self.config.fault_after.filter(|&(idx, _)| idx == w);
                scope.spawn(move || {
                    let mut child = {
                        let _span = tnm_obs::span!("distributed.spawn", worker = w);
                        match spawn_worker(bin, fault.map(|(_, jobs)| jobs)) {
                            Ok(c) => c,
                            Err(_) => {
                                tnm_obs::counter_add("distributed.workers_lost", 1);
                                return;
                            }
                        }
                    };
                    spawned.fetch_add(1, Ordering::Relaxed);
                    let mut stdin = child.stdin.take().expect("piped stdin");
                    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
                    loop {
                        let queued = queue.lock().expect("job queue poisoned").pop_front();
                        let Some(mut queued) = queued else {
                            if pending.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            // Another worker is mid-shard; if it dies,
                            // its job comes back to the queue. Stay
                            // alive to pick it up.
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            continue;
                        };
                        match dispatch(&mut stdin, &mut stdout, &queued.job) {
                            Ok((reply, metrics)) => {
                                let shard_id = reply.shard_id();
                                if tnm_obs::enabled() {
                                    // Fold the worker's per-job metrics
                                    // into the coordinator's registry
                                    // and re-emit its wall time as a
                                    // synthetic walk span, so one trace
                                    // shows the whole run.
                                    tnm_obs::global().apply(&metrics.obs);
                                    tnm_obs::histogram_record_ns(
                                        "distributed.shard_wall_ns",
                                        metrics.wall_ns,
                                    );
                                }
                                if tnm_obs::enabled() || trace.is_some() {
                                    tnm_obs::record_span(
                                        "distributed.walk",
                                        metrics.wall_ns,
                                        &[("shard", shard_id.to_string())],
                                    );
                                }
                                if let Some(ctx) = trace {
                                    // Stitch the worker's shipped spans
                                    // into this process's trace: re-mint
                                    // ids, attach their roots under the
                                    // request's parent span, and shift
                                    // their zero-based clocks to "the
                                    // walk started wall_ns ago".
                                    tnm_obs::inject_spans(
                                        metrics.spans,
                                        ctx.parent_span,
                                        tnm_obs::now_ns().saturating_sub(metrics.wall_ns),
                                    );
                                }
                                let _merge = tnm_obs::span!("distributed.merge", shard = shard_id);
                                apply_reply(projection, reply, merged);
                                pending.fetch_sub(1, Ordering::Release);
                            }
                            Err(e) => {
                                // Crash detected: hand the shard to the
                                // survivors — with its failure history,
                                // so a *poisoned* shard that keeps
                                // killing workers is diagnosable from
                                // the final error — and retire this
                                // worker.
                                queued.attempts += 1;
                                queued.last_error = Some(e.to_string());
                                queue.lock().expect("job queue poisoned").push_back(queued);
                                tnm_obs::counter_add("distributed.workers_lost", 1);
                                tnm_obs::counter_add("distributed.jobs_rescheduled", 1);
                                let _ = child.kill();
                                let _ = child.wait();
                                return;
                            }
                        }
                    }
                    let _ = wire::write_frame(&mut stdin, KIND_SHUTDOWN, &[]);
                    let _ = stdin.flush();
                    drop(stdin);
                    let _ = child.wait();
                });
            }
        });
        let outstanding = pending.load(Ordering::Acquire);
        if outstanding > 0 {
            // Name the shards and their failure history: "one poisoned
            // shard job killed each worker in turn" reads very
            // differently from "the cluster went down", and the
            // operator needs to know which.
            let leftovers: Vec<String> = queue
                .lock()
                .expect("job queue poisoned")
                .iter()
                .map(|q| match (&q.last_error, q.attempts) {
                    (Some(err), n) => {
                        format!("shard {} ({n} failed attempts; last: {err})", q.job.shard_id)
                    }
                    (None, _) => format!("shard {} (never attempted)", q.job.shard_id),
                })
                .collect();
            panic!(
                "distributed engine: every worker died with {outstanding} shard(s) uncounted: {}",
                leftovers.join("; ")
            );
        }
        let stats =
            DistributedRunStats { shards, workers_spawned: spawned.load(Ordering::Relaxed) };
        let counts = merged.into_inner().expect("merged counts poisoned");
        (counts, stats)
    }
}

/// One work-queue entry: the job plus its failure history, so the
/// run's final diagnostics can tell a poisoned shard (same job killing
/// worker after worker) from a cluster that went down.
struct QueuedJob {
    job: WorkerJob,
    attempts: usize,
    last_error: Option<String>,
}

fn spawn_worker(bin: &PathBuf, exit_after: Option<usize>) -> std::io::Result<Child> {
    let mut cmd = Command::new(bin);
    cmd.arg("worker").stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::inherit());
    if let Some(jobs) = exit_after {
        cmd.env("TNM_WORKER_EXIT_AFTER", jobs.to_string());
    }
    if tnm_obs::enabled() {
        // Workers inherit the coordinator's observability switch and
        // ship their per-job metrics back in the reply frames.
        cmd.env("TNM_OBS", "1");
    }
    cmd.spawn()
}

/// Sends one job and reads its reply. Any failure — broken pipe,
/// truncated frame, undecodable or mismatched reply — means the worker
/// is unusable, and the caller requeues the job.
fn dispatch(
    stdin: &mut std::process::ChildStdin,
    stdout: &mut BufReader<std::process::ChildStdout>,
    job: &WorkerJob,
) -> Result<(WorkerReply, protocol::ReplyMetrics), WireError> {
    wire::write_frame(&mut *stdin, KIND_JOB, &protocol::encode_job(job))?;
    stdin.flush()?;
    match protocol::read_reply(&mut *stdout, wire::MAX_FRAME_PAYLOAD)? {
        Some((reply, metrics)) => {
            if reply.shard_id() != job.shard_id {
                return Err(WireError::Malformed(format!(
                    "reply for shard {} to a job for shard {}",
                    reply.shard_id(),
                    job.shard_id
                )));
            }
            // The reply kind must match what the job asked for: a
            // counts reply to an induced job would merge unfiltered
            // counts (silent overcount), the reverse would have no
            // projection to check against. Either means the peer does
            // not speak this job's contract — a worker failure, not a
            // panic.
            let induced_reply = matches!(reply, WorkerReply::Induced { .. });
            if induced_reply != job.want_induced {
                return Err(WireError::Malformed(format!(
                    "reply kind mismatch for shard {}: induced={induced_reply}, job wanted \
                     induced={}",
                    job.shard_id, job.want_induced
                )));
            }
            Ok((reply, metrics))
        }
        None => Err(WireError::Truncated { needed: 1, available: 0 }),
    }
}

/// Folds one verified reply into the merged totals. Count replies
/// merge directly; induced groups pass the coordinator's
/// static-inducedness verdict — one [`induced_cover_ok`] evaluation per
/// group against the shared parent projection — before tallying.
fn apply_reply(
    projection: Option<&tnm_graph::StaticProjection>,
    reply: WorkerReply,
    merged: &Mutex<MotifCounts>,
) {
    match reply {
        WorkerReply::Counts { counts, .. } => {
            merged.lock().expect("merged counts poisoned").merge(&counts);
        }
        WorkerReply::Induced { groups, .. } => {
            let proj = projection.expect("induced replies only for induced jobs");
            let mut counts = MotifCounts::new();
            let mut nodes: Vec<NodeId> = Vec::new();
            let mut covered: Vec<Edge> = Vec::new();
            for g in groups {
                nodes.clear();
                nodes.extend(g.nodes.iter().map(|&n| NodeId(n)));
                covered.clear();
                covered.extend(g.covered.iter().map(|&(a, b)| Edge::new(a, b)));
                if induced_cover_ok(&nodes, &covered, |edge| proj.has_edge(edge)) {
                    counts.add(g.signature, g.count);
                }
            }
            merged.lock().expect("merged counts poisoned").merge(&counts);
        }
    }
}

impl CountEngine for DistributedEngine {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn capabilities(&self) -> EngineCaps {
        EngineCaps {
            parallel: self.config.workers > 1,
            windowed_pruning: true,
            deterministic_enumeration: true,
            supports_signature_filter: true,
        }
    }

    fn count(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts {
        self.count_with_stats(graph, cfg).0
    }

    /// Per-instance callbacks cannot cross a process boundary, so
    /// enumeration delegates to the in-process sharded engine over the
    /// same plan geometry — identical instances in the serial engines'
    /// deterministic order.
    fn enumerate(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
        callback: &mut dyn FnMut(&MotifInstance<'_>),
    ) {
        ShardedEngine::new(self.config.shard_events).enumerate(graph, cfg, callback);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use tnm_graph::TemporalGraphBuilder;

    fn graph(events: usize) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..events {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((x >> 33) % 11) as u32;
            let v = (u + 1 + ((x >> 13) % 9) as u32) % 11;
            b.push(tnm_graph::Event::new(u, v, (i / 2) as i64));
        }
        b.build().unwrap()
    }

    #[test]
    fn degenerate_plans_stay_in_process() {
        let g = graph(120);
        // Unbounded timing: one shard, no processes.
        let unbounded = EnumConfig::new(3, 3);
        let (counts, stats) =
            DistributedEngine::new(4).with_shard_events(16).count_with_stats(&g, &unbounded);
        assert_eq!(stats.shards, 1);
        assert_eq!(stats.workers_spawned, 0);
        assert_eq!(counts, WindowedEngine.count(&g, &unbounded));
        // Shard target at the graph size: same degeneration.
        let bounded = EnumConfig::new(3, 3).with_timing(Timing::only_w(10));
        let (counts, stats) = DistributedEngine::new(2).count_with_stats(&g, &bounded);
        assert_eq!(stats.shards, 1);
        assert_eq!(counts, WindowedEngine.count(&g, &bounded));
    }

    #[test]
    fn bogus_worker_binary_panics_rather_than_undercounts() {
        let g = graph(200);
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(8));
        let engine = DistributedEngine::new(2)
            .with_shard_events(25)
            .with_worker_bin("/nonexistent/definitely-not-tnm");
        // An explicit-but-bogus binary is a spawn failure per worker,
        // not a quiet fallback: every worker is lost, and a run with
        // shards outstanding must panic, never return partial counts.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.count(&g, &cfg)));
        assert!(outcome.is_err(), "all workers failing to spawn cannot silently undercount");
    }

    #[test]
    fn engine_name_and_caps() {
        let e = DistributedEngine::new(4).with_shard_events(100);
        assert_eq!(e.name(), "distributed");
        assert!(e.capabilities().parallel);
        assert!(e.capabilities().windowed_pruning);
        assert!(e.capabilities().deterministic_enumeration);
        assert!(!DistributedEngine::new(1).capabilities().parallel);
        assert_eq!(e.config().workers, 4);
        assert_eq!(e.config().shard_events, 100);
        assert_eq!(DistributedEngine::new(0).config().workers, 1);
    }
}
