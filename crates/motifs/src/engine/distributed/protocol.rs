//! Message schemas of the coordinator ↔ worker protocol.
//!
//! Every message travels as one [`tnm_graph::wire`] frame whose `kind`
//! byte selects the schema. The framing layer (magic, version, length
//! validation) lives in `tnm-graph`; this module only defines the
//! payloads, which are built from the wire primitives:
//!
//! | kind | direction | payload |
//! |---|---|---|
//! | [`KIND_JOB`] | coordinator → worker | [`WorkerJob`]: shard id, spilled-shard path, node-id space, owned start range, full [`EnumConfig`] |
//! | [`KIND_COUNTS`] | worker → coordinator | shard id + per-signature counts |
//! | [`KIND_INDUCED`] | worker → coordinator | shard id + a `last` marker + a batch of [`InducedGroup`]s — instances aggregated by (signature, node set, covered edges) for the coordinator's inducedness recheck; large replies span several frames, reassembled by [`read_reply`] |
//! | [`KIND_SHUTDOWN`] | coordinator → worker | empty: drain and exit cleanly |
//!
//! Induced replies deliberately do **not** ship one record per
//! instance: the static-inducedness verdict depends only on the
//! instance's node set and covered-edge set
//! ([`induced_cover_ok`](crate::induced::induced_cover_ok)), so the
//! worker folds its instances into per-`(signature, nodes, covered)`
//! groups with a count. Reply size is bounded by the number of
//! *distinct groups* — typically orders of magnitude below the
//! instance count — and, so that no shard can ever outgrow the
//! frame-payload ceiling, induced replies are **chunked**: at most
//! [`INDUCED_GROUP_BATCH`] groups per frame, the final frame marked
//! `last`, and [`read_reply`] reassembles the sequence (rejecting
//! mixed shard ids). The coordinator evaluates each group's verdict
//! exactly once.
//!
//! Signatures are packed one byte per event (`src_digit << 4 \|
//! dst_digit` — digits never exceed 9), and decoding re-validates
//! canonical form through [`MotifSignature::from_pairs`], so a corrupt
//! peer cannot smuggle a non-canonical signature into a count table.
//! Every decoder finishes with [`WireReader::finish`], making trailing
//! bytes an error rather than slack.

use crate::constraints::Timing;
use crate::count::MotifCounts;
use crate::engine::config::EnumConfig;
use crate::notation::MotifSignature;
use tnm_graph::wire::{WireError, WireReader, WireWriter};

/// Frame kind: a shard job descriptor.
pub(crate) const KIND_JOB: u8 = 1;
/// Frame kind: a per-signature count reply.
pub(crate) const KIND_COUNTS: u8 = 2;
/// Frame kind: an aggregated induced-group reply (static-induced jobs).
pub(crate) const KIND_INDUCED: u8 = 3;
/// Frame kind: orderly worker shutdown.
pub(crate) const KIND_SHUTDOWN: u8 = 4;

/// Maximum [`InducedGroup`]s per [`KIND_INDUCED`] frame. A group
/// encodes to well under 256 bytes (≤ 8 events ⇒ ≤ 16 nodes and ≤ 8
/// covered edges), so a full batch stays far below
/// [`MAX_FRAME_PAYLOAD`](tnm_graph::wire::MAX_FRAME_PAYLOAD); a shard
/// with more groups simply spans more frames.
pub(crate) const INDUCED_GROUP_BATCH: usize = 200_000;

/// One shard's worth of work, shipped to a worker process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WorkerJob {
    /// Plan-wide shard id; echoed in the reply.
    pub shard_id: u32,
    /// Path of the spilled shard file
    /// ([`io::write_events_raw`](tnm_graph::io::write_events_raw) block).
    pub shard_path: String,
    /// The parent graph's node-id space (shard events keep parent ids).
    pub num_nodes: u32,
    /// Shard-local range of owned start events (walks launch only from
    /// these — what makes per-shard instance sets disjoint).
    pub own_lo: u64,
    /// Exclusive end of the owned range.
    pub own_hi: u64,
    /// Worker-side thread budget for the within-shard work-stealing
    /// walk (1 = serial).
    pub threads: u32,
    /// True when the coordinator needs induced groups back instead of
    /// finished counts (the static-inducedness recheck happens against
    /// the parent graph, which only the coordinator holds).
    pub want_induced: bool,
    /// The full enumeration configuration, shipped verbatim; the worker
    /// strips `static_induced` itself.
    pub cfg: EnumConfig,
    /// Request-scoped trace to run the job under, if the coordinator's
    /// query is being traced. Encoded as a *versioned optional trailing
    /// section* (length-prefixed, like the stats extension of the serve
    /// protocol): absent for untraced jobs, so the legacy layout is
    /// unchanged, and a decoder that sees bytes after the config reads
    /// them as this section.
    pub trace: Option<tnm_obs::TraceCtx>,
}

/// One aggregated induced-recheck unit: every owned instance of
/// `signature` whose node set is `nodes` and whose events cover exactly
/// the directed edges in `covered` (all in parent node-id space, since
/// shards keep parent ids). The coordinator's verdict is per group, not
/// per instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct InducedGroup {
    /// Canonical signature of the grouped instances.
    pub signature: MotifSignature,
    /// Sorted distinct node ids the instances touch.
    pub nodes: Vec<u32>,
    /// Sorted distinct `(src, dst)` edges the instances' events cover.
    pub covered: Vec<(u32, u32)>,
    /// Instances in the group.
    pub count: u64,
}

/// A worker's answer to one [`WorkerJob`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WorkerReply {
    /// Finished counts for the shard's owned instances.
    Counts {
        /// Echo of [`WorkerJob::shard_id`].
        shard_id: u32,
        /// Per-signature counts.
        counts: MotifCounts,
    },
    /// Owned instances aggregated by inducedness-relevant structure,
    /// for jobs whose final filter must run on the coordinator.
    Induced {
        /// Echo of [`WorkerJob::shard_id`].
        shard_id: u32,
        /// The groups, in sorted deterministic order.
        groups: Vec<InducedGroup>,
    },
}

impl WorkerReply {
    /// The shard this reply answers for.
    pub fn shard_id(&self) -> u32 {
        match self {
            WorkerReply::Counts { shard_id, .. } | WorkerReply::Induced { shard_id, .. } => {
                *shard_id
            }
        }
    }
}

/// Worker-side execution report riding on every reply: the job's wall
/// time (always measured — one clock read per shard) plus the worker's
/// obs metrics snapshot for that job (empty unless the worker runs with
/// observability enabled, i.e. was spawned with `TNM_OBS=1`). Encoded
/// after the reply body on the [`KIND_COUNTS`] frame and on the *last*
/// [`KIND_INDUCED`] frame of a chunk sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct ReplyMetrics {
    /// Wall-clock nanoseconds the worker spent serving the job.
    pub wall_ns: u64,
    /// The worker's per-job metrics delta.
    pub obs: tnm_obs::Snapshot,
    /// The worker's side of the request trace (normalized: dense span
    /// ids, start times zero-based at job start), shipped only when the
    /// job carried a [`WorkerJob::trace`]. Encoded as a versioned
    /// optional trailing section after the snapshot — absent when
    /// empty, so untraced replies keep the legacy layout.
    pub spans: Vec<tnm_obs::SpanRecord>,
}

pub(crate) fn put_signature(w: &mut WireWriter, sig: &MotifSignature) {
    let pairs = sig.pairs();
    w.put_u8(pairs.len() as u8);
    for &(a, b) in pairs {
        w.put_u8((a << 4) | b);
    }
}

pub(crate) fn get_signature(r: &mut WireReader<'_>) -> Result<MotifSignature, WireError> {
    let len = r.u8()? as usize;
    let mut pairs = Vec::with_capacity(len);
    for _ in 0..len {
        let byte = r.u8()?;
        pairs.push((byte >> 4, byte & 0x0F));
    }
    MotifSignature::from_pairs(&pairs)
        .map_err(|e| WireError::Malformed(format!("non-canonical signature: {e}")))
}

pub(crate) fn put_config(w: &mut WireWriter, cfg: &EnumConfig) {
    w.put_u32(cfg.num_events as u32);
    w.put_u32(cfg.max_nodes as u32);
    w.put_u32(cfg.min_nodes as u32);
    let flags = (cfg.consecutive_events as u8)
        | ((cfg.static_induced as u8) << 1)
        | ((cfg.constrained_dynamic as u8) << 2)
        | ((cfg.duration_aware as u8) << 3);
    w.put_u8(flags);
    w.put_opt_i64(cfg.timing.delta_c);
    w.put_opt_i64(cfg.timing.delta_w);
    match &cfg.signature_filter {
        Some(sig) => {
            w.put_bool(true);
            put_signature(w, sig);
        }
        None => w.put_bool(false),
    }
}

pub(crate) fn get_config(r: &mut WireReader<'_>) -> Result<EnumConfig, WireError> {
    let num_events = r.u32()? as usize;
    let max_nodes = r.u32()? as usize;
    let min_nodes = r.u32()? as usize;
    if num_events < 1 || max_nodes < 2 {
        return Err(WireError::Malformed(format!(
            "config bounds out of range: {num_events} events on {max_nodes} nodes"
        )));
    }
    let flags = r.u8()?;
    if flags & !0x0F != 0 {
        return Err(WireError::Malformed(format!("unknown config flag bits {flags:#x}")));
    }
    let delta_c = r.opt_i64()?;
    let delta_w = r.opt_i64()?;
    if delta_c.is_some_and(|c| c < 0) || delta_w.is_some_and(|w| w < 0) {
        return Err(WireError::Malformed("negative timing bound".into()));
    }
    let signature_filter = if r.bool()? { Some(get_signature(r)?) } else { None };
    let mut cfg = EnumConfig::new(num_events, max_nodes);
    cfg.min_nodes = min_nodes;
    cfg.timing = Timing { delta_c, delta_w };
    cfg.consecutive_events = flags & 1 != 0;
    cfg.static_induced = flags & 2 != 0;
    cfg.constrained_dynamic = flags & 4 != 0;
    cfg.duration_aware = flags & 8 != 0;
    cfg.signature_filter = signature_filter;
    Ok(cfg)
}

/// Encodes a [`KIND_JOB`] payload.
pub(crate) fn encode_job(job: &WorkerJob) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(job.shard_id);
    w.put_str(&job.shard_path);
    w.put_u32(job.num_nodes);
    w.put_u64(job.own_lo);
    w.put_u64(job.own_hi);
    w.put_u32(job.threads);
    w.put_bool(job.want_induced);
    put_config(&mut w, &job.cfg);
    if let Some(ctx) = &job.trace {
        let mut section = WireWriter::new();
        section.put_u64(ctx.trace_id);
        section.put_u64(ctx.parent_span);
        w.put_bytes(&section.into_bytes());
    }
    w.into_bytes()
}

/// Decodes a [`KIND_JOB`] payload.
pub(crate) fn decode_job(payload: &[u8]) -> Result<WorkerJob, WireError> {
    let mut r = WireReader::new(payload);
    let shard_id = r.u32()?;
    let shard_path = r.str()?.to_string();
    let num_nodes = r.u32()?;
    let own_lo = r.u64()?;
    let own_hi = r.u64()?;
    if own_lo > own_hi {
        return Err(WireError::Malformed(format!("owned range {own_lo}..{own_hi} is inverted")));
    }
    let threads = r.u32()?;
    let want_induced = r.bool()?;
    let cfg = get_config(&mut r)?;
    // Versioned optional trailing section: bytes after the legacy
    // layout are the trace context.
    let trace = if r.remaining() > 0 {
        let section = r.bytes()?;
        let mut sr = WireReader::new(section);
        let trace_id = sr.u64()?;
        let parent_span = sr.u64()?;
        sr.finish()?;
        if trace_id == 0 {
            return Err(WireError::Malformed("trace section with trace id 0".into()));
        }
        Some(tnm_obs::TraceCtx { trace_id, parent_span })
    } else {
        None
    };
    r.finish()?;
    Ok(WorkerJob {
        shard_id,
        shard_path,
        num_nodes,
        own_lo,
        own_hi,
        threads,
        want_induced,
        cfg,
        trace,
    })
}

/// Encodes a [`WorkerReply`] as one or more frames. Count tables are
/// written in sorted signature order so identical replies are
/// byte-identical regardless of hash-map iteration order; induced
/// replies are split into [`INDUCED_GROUP_BATCH`]-sized frames with the
/// final one marked `last`, so no shard can produce a frame over the
/// payload ceiling. `metrics` rides after the body of the final frame.
pub(crate) fn encode_reply(reply: &WorkerReply, metrics: &ReplyMetrics) -> Vec<(u8, Vec<u8>)> {
    encode_reply_batched(reply, metrics, INDUCED_GROUP_BATCH)
}

/// [`encode_reply`] with an explicit batch size (unit tests exercise
/// chunking without building 200k groups).
pub(crate) fn encode_reply_batched(
    reply: &WorkerReply,
    metrics: &ReplyMetrics,
    batch: usize,
) -> Vec<(u8, Vec<u8>)> {
    let put_metrics = |w: &mut WireWriter| {
        w.put_u64(metrics.wall_ns);
        tnm_graph::wire::put_obs_snapshot(w, &metrics.obs);
        // Versioned optional trailing section: the worker's trace
        // spans, absent when the job was untraced.
        if !metrics.spans.is_empty() {
            let mut section = WireWriter::new();
            tnm_graph::wire::put_span_records(&mut section, &metrics.spans);
            w.put_bytes(&section.into_bytes());
        }
    };
    match reply {
        WorkerReply::Counts { shard_id, counts } => {
            let mut w = WireWriter::new();
            w.put_u32(*shard_id);
            let mut rows: Vec<(MotifSignature, u64)> = counts.iter().collect();
            rows.sort_unstable();
            w.put_u32(rows.len() as u32);
            for (sig, n) in rows {
                put_signature(&mut w, &sig);
                w.put_u64(n);
            }
            put_metrics(&mut w);
            vec![(KIND_COUNTS, w.into_bytes())]
        }
        WorkerReply::Induced { shard_id, groups } => {
            let batch = batch.max(1);
            let chunks: Vec<&[InducedGroup]> =
                if groups.is_empty() { vec![&[]] } else { groups.chunks(batch).collect() };
            let n_chunks = chunks.len();
            chunks
                .into_iter()
                .enumerate()
                .map(|(i, chunk)| {
                    let mut w = WireWriter::new();
                    w.put_u32(*shard_id);
                    let last = i + 1 == n_chunks;
                    w.put_bool(last);
                    w.put_u32(chunk.len() as u32);
                    for g in chunk {
                        put_signature(&mut w, &g.signature);
                        w.put_u8(g.nodes.len() as u8);
                        for &n in &g.nodes {
                            w.put_u32(n);
                        }
                        w.put_u8(g.covered.len() as u8);
                        for &(a, b) in &g.covered {
                            w.put_u32(a);
                            w.put_u32(b);
                        }
                        w.put_u64(g.count);
                    }
                    if last {
                        put_metrics(&mut w);
                    }
                    (KIND_INDUCED, w.into_bytes())
                })
                .collect()
        }
    }
}

/// Decodes one reply frame. The second tuple element is the frame's
/// `last` marker (count replies are always final); the third carries
/// the [`ReplyMetrics`] section, present only on final frames
/// (defaulted on non-final induced chunks).
fn decode_reply_frame(
    kind: u8,
    payload: &[u8],
) -> Result<(WorkerReply, bool, ReplyMetrics), WireError> {
    let mut r = WireReader::new(payload);
    let get_metrics = |r: &mut WireReader<'_>| -> Result<ReplyMetrics, WireError> {
        let wall_ns = r.u64()?;
        let obs = tnm_graph::wire::get_obs_snapshot(r)?;
        let spans = if r.remaining() > 0 {
            let section = r.bytes()?;
            let mut sr = WireReader::new(section);
            let spans = tnm_graph::wire::get_span_records(&mut sr)?;
            sr.finish()?;
            spans
        } else {
            Vec::new()
        };
        Ok(ReplyMetrics { wall_ns, obs, spans })
    };
    let out = match kind {
        KIND_COUNTS => {
            let shard_id = r.u32()?;
            let rows = r.u32()?;
            let mut counts = MotifCounts::new();
            for _ in 0..rows {
                let sig = get_signature(&mut r)?;
                counts.add(sig, r.u64()?);
            }
            let metrics = get_metrics(&mut r)?;
            (WorkerReply::Counts { shard_id, counts }, true, metrics)
        }
        KIND_INDUCED => {
            let shard_id = r.u32()?;
            let last = r.bool()?;
            let n = r.u32()?;
            let mut groups = Vec::with_capacity(n.min(1 << 20) as usize);
            for _ in 0..n {
                let signature = get_signature(&mut r)?;
                let k = r.u8()? as usize;
                let mut nodes = Vec::with_capacity(k);
                for _ in 0..k {
                    nodes.push(r.u32()?);
                }
                let k = r.u8()? as usize;
                let mut covered = Vec::with_capacity(k);
                for _ in 0..k {
                    let a = r.u32()?;
                    let b = r.u32()?;
                    covered.push((a, b));
                }
                groups.push(InducedGroup { signature, nodes, covered, count: r.u64()? });
            }
            let metrics = if last { get_metrics(&mut r)? } else { ReplyMetrics::default() };
            (WorkerReply::Induced { shard_id, groups }, last, metrics)
        }
        other => return Err(WireError::Malformed(format!("unexpected reply frame kind {other}"))),
    };
    r.finish()?;
    Ok(out)
}

/// Reads one **complete** reply from the stream, reassembling chunked
/// induced frames until the `last` marker. `Ok(None)` means a clean EOF
/// before any frame; EOF mid-sequence, a kind switch, or a shard-id
/// change between chunks is an error. The reply's [`ReplyMetrics`] come
/// from the final frame of the sequence.
pub(crate) fn read_reply<R: std::io::Read>(
    mut r: R,
    max_payload: usize,
) -> Result<Option<(WorkerReply, ReplyMetrics)>, WireError> {
    let Some((kind, payload)) = tnm_graph::wire::read_frame(&mut r, max_payload)? else {
        return Ok(None);
    };
    let (mut reply, mut last, mut metrics) = decode_reply_frame(kind, &payload)?;
    while !last {
        let Some((kind, payload)) = tnm_graph::wire::read_frame(&mut r, max_payload)? else {
            return Err(WireError::Truncated { needed: 1, available: 0 });
        };
        let (next, next_last, next_metrics) = decode_reply_frame(kind, &payload)?;
        match (&mut reply, next) {
            (
                WorkerReply::Induced { shard_id, groups },
                WorkerReply::Induced { shard_id: next_id, groups: more },
            ) if *shard_id == next_id => groups.extend(more),
            _ => {
                return Err(WireError::Malformed(
                    "reply chunk sequence switched kind or shard".into(),
                ))
            }
        }
        last = next_last;
        metrics = next_metrics;
    }
    Ok(Some((reply, metrics)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::notation::sig;

    fn sample_configs() -> Vec<EnumConfig> {
        let mut cfgs = vec![
            EnumConfig::new(3, 3),
            EnumConfig::new(2, 4).with_timing(Timing::only_w(3_000)),
            EnumConfig::new(4, 4).with_timing(Timing::both(20, 45)).with_consecutive(true),
            EnumConfig::new(3, 3).with_timing(Timing::only_c(1_500)).with_static_induced(true),
            EnumConfig::new(3, 3).with_timing(Timing::only_w(60)).with_constrained(true),
            EnumConfig::for_signature(sig("011202")).with_timing(Timing::only_w(10)),
            EnumConfig::new(3, 3).exact_nodes(3),
        ];
        let mut aware = EnumConfig::new(2, 2).with_timing(Timing::only_c(5));
        aware.duration_aware = true;
        cfgs.push(aware);
        cfgs
    }

    #[test]
    fn job_roundtrip_is_exhaustive_over_config_fields() {
        for (i, cfg) in sample_configs().into_iter().enumerate() {
            let trace = (i % 2 == 0).then_some(tnm_obs::TraceCtx {
                trace_id: 0xFACE + i as u64,
                parent_span: i as u64,
            });
            let job = WorkerJob {
                shard_id: i as u32,
                shard_path: format!("/tmp/spill/shard_{i}.events"),
                num_nodes: 40 + i as u32,
                own_lo: i as u64,
                own_hi: 100 + i as u64,
                threads: 1 + i as u32,
                want_induced: cfg.static_induced,
                cfg,
                trace,
            };
            let payload = encode_job(&job);
            assert_eq!(decode_job(&payload).unwrap(), job, "config {i}");
        }
    }

    /// The trace context is a versioned optional trailing section: a
    /// traceless job encodes to the exact legacy layout (no section at
    /// all), and a traced job's payload rejects truncation at every
    /// prefix except the legacy boundary (where it decodes as an
    /// untraced job — exactly the old-decoder compatibility story).
    #[test]
    fn job_trace_section_is_versioned_and_truncation_safe() {
        let untraced = WorkerJob {
            shard_id: 7,
            shard_path: "/tmp/s7".into(),
            num_nodes: 9,
            own_lo: 0,
            own_hi: 10,
            threads: 1,
            want_induced: false,
            cfg: EnumConfig::new(3, 3).with_timing(Timing::only_w(10)),
            trace: None,
        };
        let legacy = encode_job(&untraced);
        let traced = WorkerJob {
            trace: Some(tnm_obs::TraceCtx { trace_id: 0xDEAD_BEEF, parent_span: 42 }),
            ..untraced.clone()
        };
        let payload = encode_job(&traced);
        assert_eq!(&payload[..legacy.len()], &legacy[..], "legacy prefix is unchanged");
        for cut in 0..payload.len() {
            if cut == legacy.len() {
                assert_eq!(decode_job(&payload[..cut]).unwrap(), untraced);
            } else {
                assert!(decode_job(&payload[..cut]).is_err(), "prefix {cut} accepted");
            }
        }
        // Trace id 0 cannot ride in a present section.
        let mut forged = legacy.clone();
        let mut section = WireWriter::new();
        section.put_u64(0);
        section.put_u64(5);
        let section = section.into_bytes();
        let mut w = WireWriter::new();
        w.put_bytes(&section);
        forged.extend_from_slice(&w.into_bytes());
        assert!(matches!(decode_job(&forged), Err(WireError::Malformed(_))));
    }

    /// Every catalog signature — all 36 three-event motifs plus the
    /// 2-event and 1-event shapes — must survive the packed encoding.
    #[test]
    fn signature_roundtrip_over_the_catalog() {
        let mut sigs = catalog::all_3e();
        sigs.extend(catalog::all_motifs(2, 3));
        sigs.push(sig("01"));
        sigs.push(sig("01023132"));
        for s in sigs {
            let mut w = WireWriter::new();
            put_signature(&mut w, &s);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(get_signature(&mut r).unwrap(), s);
            r.finish().unwrap();
        }
    }

    /// A populated metrics section — the snapshot shapes the obs codec
    /// can produce.
    fn sample_metrics() -> ReplyMetrics {
        let reg = tnm_obs::Registry::default();
        reg.counter("engine.events_scanned").add(41);
        reg.gauge("shard.resident_events").set(7);
        reg.histogram("cache.index.verify_ns").record(1500);
        ReplyMetrics { wall_ns: 987_654_321, obs: reg.snapshot(), spans: Vec::new() }
    }

    fn sample_traced_metrics() -> ReplyMetrics {
        let spans = vec![
            tnm_obs::SpanRecord {
                name: "walk.shard4".to_string(),
                args: vec![("shard".to_string(), "4".to_string())],
                start_ns: 0,
                dur_ns: 9_000,
                tid: 1,
                depth: 0,
                trace_id: 0xFACE,
                span_id: 1,
                parent_id: 0,
            },
            tnm_obs::SpanRecord {
                name: "walk.worker0".to_string(),
                args: vec![],
                start_ns: 100,
                dur_ns: 7_000,
                tid: 1,
                depth: 1,
                trace_id: 0xFACE,
                span_id: 2,
                parent_id: 1,
            },
        ];
        ReplyMetrics { spans, ..sample_metrics() }
    }

    #[test]
    fn reply_roundtrips() {
        let metrics = sample_metrics();
        let mut counts = MotifCounts::new();
        counts.add(sig("010102"), 7);
        counts.add(sig("011202"), 123_456_789);
        let reply = WorkerReply::Counts { shard_id: 5, counts };
        let frames = encode_reply(&reply, &metrics);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].0, KIND_COUNTS);
        assert_eq!(roundtrip(&frames).unwrap(), (reply.clone(), metrics.clone()));
        assert_eq!(reply.shard_id(), 5);

        let reply = sample_induced_reply(9, 5);
        let frames = encode_reply(&reply, &metrics);
        assert_eq!(frames.len(), 1, "5 groups fit one production batch");
        assert_eq!(frames[0].0, KIND_INDUCED);
        assert_eq!(roundtrip(&frames).unwrap(), (reply.clone(), metrics.clone()));
        assert_eq!(reply.shard_id(), 9);
        // Empty induced replies still produce one (last) frame, and an
        // empty metrics section decodes back to the default.
        let empty = WorkerReply::Induced { shard_id: 3, groups: Vec::new() };
        let wall_only = ReplyMetrics { wall_ns: 5, obs: Default::default(), spans: Vec::new() };
        assert_eq!(roundtrip(&encode_reply(&empty, &wall_only)).unwrap(), (empty, wall_only));
    }

    /// The span section of [`ReplyMetrics`] is a versioned optional
    /// trailing section: span-free metrics keep the legacy byte layout,
    /// spanful ones round-trip (on count replies and on the *last*
    /// induced chunk), and truncation anywhere inside the section is
    /// rejected — except at the legacy boundary, which decodes as the
    /// span-free reply.
    #[test]
    fn reply_span_section_is_versioned_and_truncation_safe() {
        let mut counts = MotifCounts::new();
        counts.add(sig("010102"), 7);
        let reply = WorkerReply::Counts { shard_id: 5, counts };
        let plain = sample_metrics();
        let traced = sample_traced_metrics();
        let legacy = encode_reply(&reply, &plain);
        let frames = encode_reply(&reply, &traced);
        assert_eq!(roundtrip(&frames).unwrap(), (reply.clone(), traced.clone()));
        let (payload, legacy_payload) = (&frames[0].1, &legacy[0].1);
        assert_eq!(&payload[..legacy_payload.len()], &legacy_payload[..]);
        for cut in 0..payload.len() {
            let result = decode_reply_frame(KIND_COUNTS, &payload[..cut]);
            if cut == legacy_payload.len() {
                let (r, _, m) = result.unwrap();
                assert_eq!((r, m), (reply.clone(), plain.clone()));
            } else {
                assert!(result.is_err(), "reply prefix {cut} accepted");
            }
        }
        // Chunked induced replies carry the spans on the final frame
        // only, and reassembly preserves them.
        let induced = sample_induced_reply(4, 5);
        let frames = encode_reply_batched(&induced, &traced, 2);
        assert_eq!(frames.len(), 3);
        assert_eq!(roundtrip(&frames).unwrap(), (induced, traced));
    }

    /// Writes the frames to a byte stream and reads them back through
    /// the reassembling reader.
    fn roundtrip(frames: &[(u8, Vec<u8>)]) -> Result<(WorkerReply, ReplyMetrics), WireError> {
        let mut stream = Vec::new();
        for (kind, payload) in frames {
            tnm_graph::wire::write_frame(&mut stream, *kind, payload).unwrap();
        }
        Ok(read_reply(stream.as_slice(), 1 << 20)?.expect("one reply"))
    }

    fn sample_induced_reply(shard_id: u32, n: usize) -> WorkerReply {
        let groups = (0..n)
            .map(|i| InducedGroup {
                signature: sig("011202"),
                nodes: vec![i as u32, i as u32 + 1, i as u32 + 2],
                covered: vec![(i as u32, i as u32 + 1), (i as u32 + 1, i as u32 + 2)],
                count: 1 + i as u64,
            })
            .collect();
        WorkerReply::Induced { shard_id, groups }
    }

    /// Chunking: a small batch size splits an induced reply over
    /// several frames, only the final one marked last, and the reader
    /// reassembles them into the identical reply — while a chunk
    /// sequence that switches shard mid-stream, or ends before its
    /// last marker, is rejected.
    #[test]
    fn induced_replies_chunk_and_reassemble() {
        let metrics = sample_metrics();
        let reply = sample_induced_reply(4, 5);
        let frames = encode_reply_batched(&reply, &metrics, 2);
        assert_eq!(frames.len(), 3, "5 groups at batch 2 = 3 frames");
        assert!(frames.iter().all(|(k, _)| *k == KIND_INDUCED));
        // The metrics section rides only on the last frame of the
        // sequence and survives reassembly.
        assert_eq!(roundtrip(&frames).unwrap(), (reply, metrics.clone()));

        // Truncated sequence: the last frame never arrives.
        let mut stream = Vec::new();
        for (kind, payload) in &frames[..2] {
            tnm_graph::wire::write_frame(&mut stream, *kind, payload).unwrap();
        }
        assert!(matches!(read_reply(stream.as_slice(), 1 << 20), Err(WireError::Truncated { .. })));

        // A chunk for a different shard cannot splice in.
        let alien = encode_reply_batched(&sample_induced_reply(8, 3), &metrics, 100);
        let mut stream = Vec::new();
        tnm_graph::wire::write_frame(&mut stream, frames[0].0, &frames[0].1).unwrap();
        tnm_graph::wire::write_frame(&mut stream, alien[0].0, &alien[0].1).unwrap();
        assert!(matches!(read_reply(stream.as_slice(), 1 << 20), Err(WireError::Malformed(_))));
    }

    #[test]
    fn counts_encoding_is_deterministic() {
        // Same logical table built in different insertion orders must
        // serialize identically (sorted rows, not hash order).
        let mut a = MotifCounts::new();
        a.add(sig("010102"), 1);
        a.add(sig("011202"), 2);
        a.add(sig("010101"), 3);
        let mut b = MotifCounts::new();
        b.add(sig("011202"), 2);
        b.add(sig("010101"), 3);
        b.add(sig("010102"), 1);
        let m = ReplyMetrics::default();
        let pa = encode_reply(&WorkerReply::Counts { shard_id: 0, counts: a }, &m);
        let pb = encode_reply(&WorkerReply::Counts { shard_id: 0, counts: b }, &m);
        assert_eq!(pa, pb);
    }

    #[test]
    fn decoders_reject_corruption() {
        let job = WorkerJob {
            shard_id: 1,
            shard_path: "x".into(),
            num_nodes: 4,
            own_lo: 0,
            own_hi: 5,
            threads: 2,
            want_induced: false,
            cfg: EnumConfig::new(3, 3).with_timing(Timing::only_w(10)),
            trace: None,
        };
        let payload = encode_job(&job);
        // Truncation at every prefix length must error, never panic.
        for cut in 0..payload.len() {
            assert!(decode_job(&payload[..cut]).is_err(), "prefix {cut} accepted");
        }
        // Trailing bytes are rejected: a stray byte after the legacy
        // prefix reads as a truncated optional trace section.
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_job(&padded).is_err());
        // An inverted owned range is structural nonsense.
        let bad = WorkerJob { own_lo: 9, own_hi: 3, ..job.clone() };
        assert!(matches!(decode_job(&encode_job(&bad)), Err(WireError::Malformed(_))));
        // A non-canonical signature byte cannot decode.
        let mut w = WireWriter::new();
        w.put_u8(1);
        w.put_u8(0x23); // pair (2,3): first pair must be (0,1)
        let bytes = w.into_bytes();
        assert!(matches!(
            get_signature(&mut WireReader::new(&bytes)),
            Err(WireError::Malformed(_))
        ));
        // Unknown reply kinds are refused.
        assert!(matches!(decode_reply_frame(77, &[]), Err(WireError::Malformed(_))));
        // Reply frames truncate-safely too, including mid-metrics.
        let mut counts = MotifCounts::new();
        counts.add(sig("0102"), 3);
        let frames = encode_reply(&WorkerReply::Counts { shard_id: 2, counts }, &sample_metrics());
        for cut in 0..frames[0].1.len() {
            assert!(
                decode_reply_frame(KIND_COUNTS, &frames[0].1[..cut]).is_err(),
                "reply prefix {cut} accepted"
            );
        }
    }
}
