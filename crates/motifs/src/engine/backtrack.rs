//! [`BacktrackEngine`] — the seed repo's original serial walker.
//!
//! Candidate generation scans each node's plain event list from the
//! graph's node index. Kept (a) as the reference implementation every
//! other engine is differentially tested against, and (b) because for
//! unbounded-timing configurations on small graphs the index build of
//! the windowed engine buys nothing.

use crate::count::MotifCounts;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::engine::walker::{NodeListCandidates, Walker};
use crate::engine::{CountEngine, EngineCaps};
use tnm_graph::TemporalGraph;

/// Serial backtracking engine over the plain node index.
#[derive(Debug, Clone, Copy, Default)]
pub struct BacktrackEngine;

impl CountEngine for BacktrackEngine {
    fn name(&self) -> &'static str {
        "backtrack"
    }

    fn capabilities(&self) -> EngineCaps {
        EngineCaps {
            parallel: false,
            windowed_pruning: false,
            deterministic_enumeration: true,
            supports_signature_filter: true,
        }
    }

    fn count(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts {
        let mut counts = MotifCounts::new();
        self.enumerate(graph, cfg, &mut |inst| counts.add(inst.signature, 1));
        counts
    }

    fn enumerate(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
        callback: &mut dyn FnMut(&MotifInstance<'_>),
    ) {
        let mut walker = Walker::new(graph, cfg, NodeListCandidates);
        walker.run_range_by_ref(0..graph.num_events(), callback);
    }
}
