//! The request-shaped counting API: [`Query`] / [`QueryResponse`].
//!
//! Every front end that asks the engines a question — the CLI `count`
//! and `count-batch` verbs, the `tnm serve` daemon's wire protocol, a
//! library caller embedding the crate — used to hand-roll its own
//! dispatch over [`EngineKind`] and its own validation of the
//! [`EnumConfig`] it built. [`Query`] makes the request itself a value:
//! one serializable description of *what to run* (count, interval
//! report, bounded enumeration, or a shared-traversal batch) against
//! *which engine* with *what thread budget*, and one
//! [`Query::run`] entry point that validates
//! ([`EnumConfig::validate`]) and dispatches identically everywhere.
//! The serve protocol ships these values over the wire verbatim (see
//! [`serve`](crate::engine::serve)), so a request that validates in the
//! CLI validates on the server by construction.
//!
//! Responses mirror the request shape: a [`Query::Count`] yields
//! [`QueryResponse::Counts`], a [`Query::Report`] yields the widened
//! [`QueryResponse::Report`] (exact engines included — zero-width
//! intervals), a [`Query::Enumerate`] yields up to `limit` concrete
//! instances plus the exact total, and a [`Query::Batch`] yields one
//! count table per config, bit-identical to running each solo.

use crate::count::MotifCounts;
use crate::engine::config::{ConfigError, EnumConfig, MotifInstance};
use crate::engine::report::EngineReport;
use crate::engine::EngineKind;
use crate::notation::MotifSignature;
use std::fmt;
use tnm_graph::{EventIdx, TemporalGraph};

/// One self-contained counting request: configuration(s) + engine +
/// thread budget. Shared verbatim by the CLI verbs, the `tnm serve`
/// wire protocol, and library callers.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Per-signature instance counts.
    Count {
        /// What to enumerate.
        cfg: EnumConfig,
        /// Which engine runs it (`Auto` resolves per workload).
        engine: EngineKind,
        /// Thread budget (clamped to ≥ 1).
        threads: usize,
    },
    /// Counts widened with confidence intervals ([`EngineReport`]);
    /// exact engines report zero-width intervals.
    Report {
        /// What to enumerate.
        cfg: EnumConfig,
        /// Which engine runs it.
        engine: EngineKind,
        /// Thread budget.
        threads: usize,
    },
    /// Up to `limit` concrete instances plus the exact total. Rejected
    /// for the approximate sampler, which has no instances to offer.
    Enumerate {
        /// What to enumerate.
        cfg: EnumConfig,
        /// Which engine runs it.
        engine: EngineKind,
        /// Thread budget.
        threads: usize,
        /// Maximum instances materialized in the response (the total
        /// keeps counting past it).
        limit: usize,
    },
    /// Several configurations against one graph, sharing traversals
    /// across compatible configs (see [`EngineKind::count_batch`]).
    Batch {
        /// The configurations, answered in order.
        cfgs: Vec<EnumConfig>,
        /// Which engine runs them.
        engine: EngineKind,
        /// Thread budget.
        threads: usize,
    },
}

/// One materialized instance in a [`QueryResponse::Instances`] reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryInstance {
    /// The instance's canonical signature.
    pub signature: MotifSignature,
    /// Time-ordered event indices into the queried graph.
    pub events: Vec<EventIdx>,
}

/// The answer to one [`Query`], shape-matched to the request variant.
#[derive(Debug, Clone)]
pub enum QueryResponse {
    /// Answer to [`Query::Count`].
    Counts(MotifCounts),
    /// Answer to [`Query::Report`].
    Report(EngineReport),
    /// Answer to [`Query::Enumerate`].
    Instances {
        /// Exact number of instances (counts past `limit`).
        total: u64,
        /// The first `limit` instances in deterministic enumeration
        /// order.
        instances: Vec<QueryInstance>,
        /// True when `total` exceeded the limit and instances were
        /// dropped.
        truncated: bool,
    },
    /// Answer to [`Query::Batch`]: `out[i]` answers `cfgs[i]`.
    Batch(Vec<MotifCounts>),
}

impl QueryResponse {
    /// The flat count table of the response, merging batch members;
    /// convenience for callers that only care about totals.
    pub fn counts(&self) -> MotifCounts {
        match self {
            QueryResponse::Counts(c) => c.clone(),
            QueryResponse::Report(r) => r.counts.clone(),
            QueryResponse::Instances { instances, .. } => {
                let mut c = MotifCounts::new();
                for inst in instances {
                    c.add(inst.signature, 1);
                }
                c
            }
            QueryResponse::Batch(tables) => {
                let mut c = MotifCounts::new();
                for t in tables {
                    c.merge(t);
                }
                c
            }
        }
    }
}

/// A request that cannot run: an invalid configuration or an
/// engine/variant combination with no meaningful answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A configuration failed [`EnumConfig::validate`]. For batches,
    /// `index` names the offending member.
    Config {
        /// Index of the configuration within the query (0 for the
        /// single-config variants).
        index: usize,
        /// The underlying validation failure.
        source: ConfigError,
    },
    /// [`Query::Enumerate`] with the approximate sampler: estimates
    /// have no instances to materialize.
    ApproximateEnumeration,
    /// [`Query::Batch`] with no configurations.
    EmptyBatch,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Config { index: 0, source } => write!(f, "{source}"),
            QueryError::Config { index, source } => write!(f, "config {index}: {source}"),
            QueryError::ApproximateEnumeration => {
                write!(f, "cannot enumerate with the approximate sampling engine")
            }
            QueryError::EmptyBatch => write!(f, "batch query carries no configurations"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ConfigError> for QueryError {
    fn from(source: ConfigError) -> Self {
        QueryError::Config { index: 0, source }
    }
}

impl Query {
    /// The engine the query names (before `Auto` resolution).
    pub fn engine(&self) -> EngineKind {
        match self {
            Query::Count { engine, .. }
            | Query::Report { engine, .. }
            | Query::Enumerate { engine, .. }
            | Query::Batch { engine, .. } => *engine,
        }
    }

    /// The query's thread budget, clamped to at least one.
    pub fn threads(&self) -> usize {
        match self {
            Query::Count { threads, .. }
            | Query::Report { threads, .. }
            | Query::Enumerate { threads, .. }
            | Query::Batch { threads, .. } => (*threads).max(1),
        }
    }

    /// The configurations the query carries, in order.
    pub fn configs(&self) -> &[EnumConfig] {
        match self {
            Query::Count { cfg, .. } | Query::Report { cfg, .. } | Query::Enumerate { cfg, .. } => {
                std::slice::from_ref(cfg)
            }
            Query::Batch { cfgs, .. } => cfgs,
        }
    }

    /// The shared validation path: every carried configuration must
    /// pass [`EnumConfig::validate`], a batch must be non-empty, and
    /// enumeration cannot run on the approximate sampler. Exactly what
    /// [`Query::run`] enforces — front ends call this early to fail
    /// before loading a graph.
    pub fn validate(&self) -> Result<(), QueryError> {
        if let Query::Batch { cfgs, .. } = self {
            if cfgs.is_empty() {
                return Err(QueryError::EmptyBatch);
            }
        }
        if let Query::Enumerate { engine, .. } = self {
            if matches!(engine, EngineKind::Sampling { .. }) {
                return Err(QueryError::ApproximateEnumeration);
            }
        }
        for (index, cfg) in self.configs().iter().enumerate() {
            cfg.validate().map_err(|source| QueryError::Config { index, source })?;
        }
        Ok(())
    }

    /// Validates and dispatches the query against `graph`, returning
    /// the shape-matched [`QueryResponse`]. This is the single entry
    /// point behind the CLI `count`/`count-batch` verbs and every
    /// server-side query — identical inputs produce bit-identical
    /// results regardless of the front end.
    pub fn run(&self, graph: &TemporalGraph) -> Result<QueryResponse, QueryError> {
        self.validate()?;
        let threads = self.threads();
        // One root span per query variant; inert unless obs is on or a
        // request trace is active. Engine-internal spans (plan, spill,
        // walk, merge) nest under it on this thread.
        let _root = tnm_obs::Span::start(match self {
            Query::Count { .. } => "query.count",
            Query::Report { .. } => "query.report",
            Query::Enumerate { .. } => "query.enumerate",
            Query::Batch { .. } => "query.batch",
        })
        .arg("engine", self.engine())
        .arg("threads", threads);
        Ok(match self {
            Query::Count { cfg, engine, .. } => {
                QueryResponse::Counts(engine.count(graph, cfg, threads))
            }
            Query::Report { cfg, engine, .. } => {
                QueryResponse::Report(engine.report(graph, cfg, threads))
            }
            Query::Enumerate { cfg, engine, limit, .. } => {
                let mut total = 0u64;
                let mut instances = Vec::new();
                let resolved = engine.engine_for(graph, cfg, threads);
                resolved.enumerate(graph, cfg, &mut |inst: &MotifInstance<'_>| {
                    total += 1;
                    if instances.len() < *limit {
                        instances.push(QueryInstance {
                            signature: inst.signature,
                            events: inst.events.to_vec(),
                        });
                    }
                });
                let truncated = (total as usize) > instances.len();
                QueryResponse::Instances { total, instances, truncated }
            }
            Query::Batch { cfgs, engine, .. } => {
                QueryResponse::Batch(engine.count_batch(graph, cfgs, threads))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use crate::notation::sig;
    use tnm_graph::TemporalGraphBuilder;

    fn wedge_graph() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 20)
            .event(2, 0, 30)
            .event(0, 1, 40)
            .build()
            .unwrap()
    }

    #[test]
    fn count_and_report_match_direct_dispatch() {
        let g = wedge_graph();
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(30));
        for engine in [EngineKind::Backtrack, EngineKind::Windowed, EngineKind::Stream] {
            let q = Query::Count { cfg: cfg.clone(), engine, threads: 1 };
            let QueryResponse::Counts(counts) = q.run(&g).unwrap() else { panic!("shape") };
            assert_eq!(counts, engine.count(&g, &cfg, 1), "{engine}");

            let q = Query::Report { cfg: cfg.clone(), engine, threads: 1 };
            let QueryResponse::Report(report) = q.run(&g).unwrap() else { panic!("shape") };
            assert_eq!(report.counts, counts);
            assert!(report.exact);
        }
    }

    #[test]
    fn enumerate_truncates_but_keeps_counting() {
        let g = wedge_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(30));
        let full = Query::Enumerate {
            cfg: cfg.clone(),
            engine: EngineKind::Windowed,
            threads: 1,
            limit: usize::MAX,
        };
        let QueryResponse::Instances { total, instances, truncated } = full.run(&g).unwrap() else {
            panic!("shape")
        };
        assert_eq!(total as usize, instances.len());
        assert!(!truncated);
        assert!(total > 1);

        let capped = Query::Enumerate { cfg, engine: EngineKind::Windowed, threads: 1, limit: 1 };
        let QueryResponse::Instances { total: t2, instances: i2, truncated: tr2 } =
            capped.run(&g).unwrap()
        else {
            panic!("shape")
        };
        assert_eq!(t2, total, "the total counts past the limit");
        assert_eq!(i2.len(), 1);
        assert!(tr2);
        assert_eq!(i2[0], instances[0], "deterministic prefix");
    }

    #[test]
    fn batch_matches_solo_runs() {
        let g = wedge_graph();
        let cfgs = vec![
            EnumConfig::new(2, 3).with_timing(Timing::only_w(30)),
            EnumConfig::new(3, 3).with_timing(Timing::only_w(60)),
        ];
        let q = Query::Batch { cfgs: cfgs.clone(), engine: EngineKind::Auto, threads: 2 };
        let QueryResponse::Batch(tables) = q.run(&g).unwrap() else { panic!("shape") };
        for (cfg, table) in cfgs.iter().zip(&tables) {
            assert_eq!(*table, EngineKind::Auto.count(&g, cfg, 2));
        }
    }

    #[test]
    fn validation_rejects_unrunnable_requests() {
        let sampler = EngineKind::sampling(8, 1);
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(30));
        let q = Query::Enumerate { cfg: cfg.clone(), engine: sampler, threads: 1, limit: 5 };
        assert_eq!(q.validate(), Err(QueryError::ApproximateEnumeration));

        let q = Query::Batch { cfgs: vec![], engine: EngineKind::Auto, threads: 1 };
        assert_eq!(q.validate(), Err(QueryError::EmptyBatch));

        let mut bad = EnumConfig::for_signature(sig("010102"));
        bad.num_events = 2;
        let q = Query::Batch { cfgs: vec![cfg, bad], engine: EngineKind::Auto, threads: 1 };
        let err = q.validate().unwrap_err();
        assert!(matches!(err, QueryError::Config { index: 1, .. }), "{err:?}");
        assert!(format!("{err}").contains("config 1"), "{err}");
        assert!(format!("{err}").contains("implies events=3"), "{err}");
    }

    #[test]
    fn response_counts_flatten_every_shape() {
        let g = wedge_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(30));
        let count = Query::Count { cfg: cfg.clone(), engine: EngineKind::Windowed, threads: 1 }
            .run(&g)
            .unwrap();
        let enumd = Query::Enumerate {
            cfg: cfg.clone(),
            engine: EngineKind::Windowed,
            threads: 1,
            limit: usize::MAX,
        }
        .run(&g)
        .unwrap();
        let batch = Query::Batch { cfgs: vec![cfg], engine: EngineKind::Windowed, threads: 1 }
            .run(&g)
            .unwrap();
        assert_eq!(count.counts(), enumd.counts());
        assert_eq!(count.counts(), batch.counts());
        assert!(count.counts().total() > 0);
    }
}
