//! Engine-neutral run configuration and the motif-instance callback type.
//!
//! [`EnumConfig`] describes *what* to enumerate (size/node bounds, ΔC/ΔW
//! timing, per-model restrictions, optional signature targeting) and is
//! shared verbatim by every [`CountEngine`](crate::engine::CountEngine)
//! implementation — engines differ only in *how* they drive the walk, so
//! identical configs must yield identical [`MotifCounts`]
//! (enforced by `tests/engine_equivalence.rs`).

use crate::constraints::Timing;
use crate::models::MotifModel;
use crate::notation::MotifSignature;
use std::fmt;
use tnm_graph::{EventIdx, TemporalGraph, Time};

/// A structurally invalid [`EnumConfig`], reported by
/// [`EnumConfig::validate`]/[`EnumConfig::build`].
///
/// Historically these combinations were caught ad hoc in CLI argument
/// parsing (or by `assert!`s in [`EnumConfig::new`]); the typed error
/// gives the CLI, the [`Query`](crate::engine::Query) API, and the
/// `tnm serve` protocol one shared validation path with stable,
/// test-pinned messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_events` is zero — a motif needs at least one event.
    ZeroEvents,
    /// `max_nodes` is below two — a (self-loop-free) event already
    /// touches two nodes.
    NodeBudget {
        /// The offending bound.
        max_nodes: usize,
    },
    /// `min_nodes` falls outside `2..=max_nodes`.
    MinNodes {
        /// The offending lower bound.
        min_nodes: usize,
        /// The upper bound it must not exceed.
        max_nodes: usize,
    },
    /// A ΔC or ΔW bound is negative.
    NegativeTiming {
        /// `"dc"` or `"dw"`.
        which: &'static str,
        /// The offending bound.
        value: Time,
    },
    /// The signature filter's shape conflicts with the size/node bounds.
    SignatureShape {
        /// The targeted signature.
        signature: MotifSignature,
        /// Events the signature implies.
        implied_events: usize,
        /// Nodes the signature implies.
        implied_nodes: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroEvents => write!(f, "num_events must be at least 1"),
            ConfigError::NodeBudget { max_nodes } => {
                write!(f, "max_nodes must be at least 2 (got {max_nodes})")
            }
            ConfigError::MinNodes { min_nodes, max_nodes } => {
                write!(f, "min-nodes={min_nodes} outside 2..={max_nodes}")
            }
            ConfigError::NegativeTiming { which, value } => {
                write!(f, "--{which} must be non-negative (got {value})")
            }
            ConfigError::SignatureShape { signature, implied_events, implied_nodes } => {
                write!(f, "sig={signature} implies events={implied_events} nodes={implied_nodes}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration for one enumeration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumConfig {
    /// Exact number of events per motif (`e` in `XnYe`).
    pub num_events: usize,
    /// Maximum number of distinct nodes.
    pub max_nodes: usize,
    /// Minimum number of distinct nodes (filter at emission).
    pub min_nodes: usize,
    /// ΔC / ΔW configuration.
    pub timing: Timing,
    /// Apply Kovanen's consecutive events restriction.
    pub consecutive_events: bool,
    /// Apply static-projection inducedness.
    pub static_induced: bool,
    /// Apply the constrained dynamic graphlet restriction.
    pub constrained_dynamic: bool,
    /// Measure ΔC gaps from the previous event's end time.
    pub duration_aware: bool,
    /// Only enumerate instances of this exact signature (prefix-pruned,
    /// so targeted runs are much faster than full spectra).
    pub signature_filter: Option<MotifSignature>,
}

impl EnumConfig {
    /// A permissive configuration: `num_events` events on at most
    /// `max_nodes` nodes, unbounded timing, no restrictions.
    pub fn new(num_events: usize, max_nodes: usize) -> Self {
        assert!(num_events >= 1, "motifs need at least one event");
        assert!(max_nodes >= 2, "motifs need at least two nodes");
        EnumConfig {
            num_events,
            max_nodes,
            min_nodes: 2,
            timing: Timing::UNBOUNDED,
            consecutive_events: false,
            static_induced: false,
            constrained_dynamic: false,
            duration_aware: false,
            signature_filter: None,
        }
    }

    /// Non-panicking [`EnumConfig::new`]: rejects out-of-range size
    /// bounds with a [`ConfigError`] instead of asserting. Entry point
    /// for configurations built from untrusted input (CLI arguments,
    /// wire requests).
    pub fn try_new(num_events: usize, max_nodes: usize) -> Result<Self, ConfigError> {
        if num_events < 1 {
            return Err(ConfigError::ZeroEvents);
        }
        if max_nodes < 2 {
            return Err(ConfigError::NodeBudget { max_nodes });
        }
        Ok(EnumConfig::new(num_events, max_nodes))
    }

    /// Checks the configuration's internal consistency: size/node
    /// bounds in range, `min_nodes` within `2..=max_nodes`, timing
    /// bounds non-negative, and any signature filter shape-compatible
    /// with the bounds. The signature check runs before the `min_nodes`
    /// range check so a conflicting target reports the implied shape
    /// rather than the derived-range symptom.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_events < 1 {
            return Err(ConfigError::ZeroEvents);
        }
        if self.max_nodes < 2 {
            return Err(ConfigError::NodeBudget { max_nodes: self.max_nodes });
        }
        if let Some(c) = self.timing.delta_c {
            if c < 0 {
                return Err(ConfigError::NegativeTiming { which: "dc", value: c });
            }
        }
        if let Some(w) = self.timing.delta_w {
            if w < 0 {
                return Err(ConfigError::NegativeTiming { which: "dw", value: w });
            }
        }
        if let Some(sig) = &self.signature_filter {
            let (e, n) = (sig.num_events(), sig.num_nodes());
            if e != self.num_events || n > self.max_nodes || n < self.min_nodes {
                return Err(ConfigError::SignatureShape {
                    signature: *sig,
                    implied_events: e,
                    implied_nodes: n,
                });
            }
        }
        if self.min_nodes < 2 || self.min_nodes > self.max_nodes {
            return Err(ConfigError::MinNodes {
                min_nodes: self.min_nodes,
                max_nodes: self.max_nodes,
            });
        }
        Ok(())
    }

    /// Terminal builder step: [`EnumConfig::validate`] by value, so a
    /// builder chain ends in `….build()?`.
    pub fn build(self) -> Result<Self, ConfigError> {
        self.validate()?;
        Ok(self)
    }

    /// Derives the engine configuration from a [`MotifModel`].
    pub fn for_model(model: &MotifModel, num_events: usize, max_nodes: usize) -> Self {
        EnumConfig {
            timing: model.timing,
            consecutive_events: model.consecutive_events,
            static_induced: model.static_induced,
            constrained_dynamic: model.constrained_dynamic,
            duration_aware: model.duration_aware,
            ..EnumConfig::new(num_events, max_nodes)
        }
    }

    /// Targets a single signature: size/node bounds are derived from it.
    pub fn for_signature(sig: MotifSignature) -> Self {
        EnumConfig {
            min_nodes: sig.num_nodes(),
            max_nodes: sig.num_nodes(),
            signature_filter: Some(sig),
            ..EnumConfig::new(sig.num_events(), sig.num_nodes().max(2))
        }
    }

    /// Sets the timing configuration (chainable).
    pub fn with_timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Requires exactly `n` nodes (chainable), e.g. 3 for the 3n3e tables.
    pub fn exact_nodes(mut self, n: usize) -> Self {
        self.min_nodes = n;
        self.max_nodes = n;
        self
    }

    /// Toggles the consecutive events restriction (chainable).
    pub fn with_consecutive(mut self, yes: bool) -> Self {
        self.consecutive_events = yes;
        self
    }

    /// Toggles the constrained dynamic graphlet restriction (chainable).
    pub fn with_constrained(mut self, yes: bool) -> Self {
        self.constrained_dynamic = yes;
        self
    }

    /// Toggles static inducedness (chainable).
    pub fn with_static_induced(mut self, yes: bool) -> Self {
        self.static_induced = yes;
        self
    }

    /// The largest first-to-last timespan an admissible instance can
    /// have, judging from the configuration alone:
    /// `min(ΔC·(num_events−1), ΔW)` over whichever bounds are present;
    /// `None` when nothing bounds the span. Used by
    /// [`auto_select`](crate::engine::auto_select)'s window-occupancy
    /// heuristic and the sampling engine's window sizing.
    ///
    /// A **duration-aware** ΔC measures each gap from the previous
    /// event's *end*, so ΔC alone no longer bounds the span (event
    /// durations are a property of the graph, not the configuration);
    /// only a ΔW bound survives in that case. The sampling engine
    /// tightens this with the graph's actual maximum duration — see
    /// [`SamplingEngine::window_len_for`](crate::engine::SamplingEngine::window_len_for).
    pub fn max_admissible_span(&self) -> Option<Time> {
        let steps = self.num_events.saturating_sub(1).max(1) as Time;
        let c_span = match self.timing.delta_c {
            Some(c) if !self.duration_aware => Some(c.saturating_mul(steps)),
            _ => None,
        };
        match (c_span, self.timing.delta_w) {
            (None, None) => None,
            (Some(c), None) => Some(c),
            (None, Some(w)) => Some(w),
            (Some(c), Some(w)) => Some(c.min(w)),
        }
    }

    /// The largest first-to-last timespan an admissible instance can
    /// have **on this graph**: [`EnumConfig::max_admissible_span`]
    /// tightened for duration-aware ΔC, whose per-step gap runs from the
    /// previous event's *end* and is therefore bounded by
    /// `(ΔC + max event duration)·(num_events−1)` — a property of the
    /// graph, not the configuration alone. `None` means nothing bounds
    /// the span.
    ///
    /// This is the halo reach of the sharded engine (every event a walk
    /// starting at time `t` can touch lies in `[t, t + reach]`) and, at
    /// twice its value, the sampling engine's auto window length.
    pub fn admissible_reach(&self, graph: &TemporalGraph) -> Option<Time> {
        let steps = self.num_events.saturating_sub(1).max(1) as Time;
        let c_span = self.timing.delta_c.map(|c| {
            let max_dur = if self.duration_aware {
                graph.events().iter().map(|e| e.duration as Time).max().unwrap_or(0)
            } else {
                0
            };
            c.saturating_add(max_dur).saturating_mul(steps)
        });
        match (c_span, self.timing.delta_w) {
            (None, None) => None,
            (Some(c), None) => Some(c),
            (None, Some(w)) => Some(w),
            (Some(c), Some(w)) => Some(c.min(w)),
        }
    }
}

/// A concrete motif occurrence handed to enumeration callbacks.
#[derive(Debug, Clone, Copy)]
pub struct MotifInstance<'a> {
    /// Time-ordered event indices into the graph.
    pub events: &'a [EventIdx],
    /// The instance's canonical signature.
    pub signature: MotifSignature,
}

impl MotifInstance<'_> {
    /// Timestamps of the instance's events, in order.
    pub fn times(&self, graph: &TemporalGraph) -> Vec<Time> {
        self.events.iter().map(|&i| graph.event(i).time).collect()
    }

    /// `t_last − t_first` for this instance.
    pub fn timespan(&self, graph: &TemporalGraph) -> Time {
        let first = graph.event(self.events[0]).time;
        let last = graph.event(*self.events.last().expect("non-empty motif")).time;
        last - first
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;

    #[test]
    fn try_new_rejects_what_new_asserts() {
        assert_eq!(EnumConfig::try_new(0, 3), Err(ConfigError::ZeroEvents));
        assert_eq!(EnumConfig::try_new(3, 1), Err(ConfigError::NodeBudget { max_nodes: 1 }));
        assert_eq!(EnumConfig::try_new(3, 3).unwrap(), EnumConfig::new(3, 3));
    }

    #[test]
    fn validate_accepts_every_builder_product() {
        for cfg in [
            EnumConfig::new(1, 2),
            EnumConfig::new(3, 3).with_timing(Timing::both(10, 30)),
            EnumConfig::for_signature(sig("011202")),
            EnumConfig::new(4, 4).exact_nodes(3).with_consecutive(true),
        ] {
            cfg.validate().unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        }
    }

    #[test]
    fn validate_catches_inconsistent_bounds() {
        let mut cfg = EnumConfig::new(3, 3);
        cfg.min_nodes = 5;
        assert_eq!(cfg.validate(), Err(ConfigError::MinNodes { min_nodes: 5, max_nodes: 3 }));
        assert_eq!(format!("{}", cfg.validate().unwrap_err()), "min-nodes=5 outside 2..=3");

        let mut cfg = EnumConfig::new(2, 3);
        cfg.timing = Timing { delta_c: Some(-5), delta_w: None };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::NegativeTiming { which: "dc", value: -5 })
        ));
    }

    /// A signature filter whose shape conflicts with the bounds reports
    /// the implied shape — and does so even when the node bounds are
    /// *also* internally inconsistent as a knock-on effect, so the user
    /// sees the cause, not the symptom.
    #[test]
    fn validate_catches_signature_shape_conflicts() {
        let mut cfg = EnumConfig::for_signature(sig("010102"));
        cfg.num_events = 2;
        let err = cfg.build().unwrap_err();
        assert!(format!("{err}").contains("implies events=3"), "{err}");

        let mut cfg = EnumConfig::for_signature(sig("010102"));
        cfg.max_nodes = 2; // min_nodes stays 3: shape error wins over range
        assert!(matches!(cfg.validate(), Err(ConfigError::SignatureShape { .. })));
    }
}
