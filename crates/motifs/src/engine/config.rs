//! Engine-neutral run configuration and the motif-instance callback type.
//!
//! [`EnumConfig`] describes *what* to enumerate (size/node bounds, ΔC/ΔW
//! timing, per-model restrictions, optional signature targeting) and is
//! shared verbatim by every [`CountEngine`](crate::engine::CountEngine)
//! implementation — engines differ only in *how* they drive the walk, so
//! identical configs must yield identical [`MotifCounts`]
//! (enforced by `tests/engine_equivalence.rs`).

use crate::constraints::Timing;
use crate::models::MotifModel;
use crate::notation::MotifSignature;
use tnm_graph::{EventIdx, TemporalGraph, Time};

/// Configuration for one enumeration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumConfig {
    /// Exact number of events per motif (`e` in `XnYe`).
    pub num_events: usize,
    /// Maximum number of distinct nodes.
    pub max_nodes: usize,
    /// Minimum number of distinct nodes (filter at emission).
    pub min_nodes: usize,
    /// ΔC / ΔW configuration.
    pub timing: Timing,
    /// Apply Kovanen's consecutive events restriction.
    pub consecutive_events: bool,
    /// Apply static-projection inducedness.
    pub static_induced: bool,
    /// Apply the constrained dynamic graphlet restriction.
    pub constrained_dynamic: bool,
    /// Measure ΔC gaps from the previous event's end time.
    pub duration_aware: bool,
    /// Only enumerate instances of this exact signature (prefix-pruned,
    /// so targeted runs are much faster than full spectra).
    pub signature_filter: Option<MotifSignature>,
}

impl EnumConfig {
    /// A permissive configuration: `num_events` events on at most
    /// `max_nodes` nodes, unbounded timing, no restrictions.
    pub fn new(num_events: usize, max_nodes: usize) -> Self {
        assert!(num_events >= 1, "motifs need at least one event");
        assert!(max_nodes >= 2, "motifs need at least two nodes");
        EnumConfig {
            num_events,
            max_nodes,
            min_nodes: 2,
            timing: Timing::UNBOUNDED,
            consecutive_events: false,
            static_induced: false,
            constrained_dynamic: false,
            duration_aware: false,
            signature_filter: None,
        }
    }

    /// Derives the engine configuration from a [`MotifModel`].
    pub fn for_model(model: &MotifModel, num_events: usize, max_nodes: usize) -> Self {
        EnumConfig {
            timing: model.timing,
            consecutive_events: model.consecutive_events,
            static_induced: model.static_induced,
            constrained_dynamic: model.constrained_dynamic,
            duration_aware: model.duration_aware,
            ..EnumConfig::new(num_events, max_nodes)
        }
    }

    /// Targets a single signature: size/node bounds are derived from it.
    pub fn for_signature(sig: MotifSignature) -> Self {
        EnumConfig {
            min_nodes: sig.num_nodes(),
            max_nodes: sig.num_nodes(),
            signature_filter: Some(sig),
            ..EnumConfig::new(sig.num_events(), sig.num_nodes().max(2))
        }
    }

    /// Sets the timing configuration (chainable).
    pub fn with_timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Requires exactly `n` nodes (chainable), e.g. 3 for the 3n3e tables.
    pub fn exact_nodes(mut self, n: usize) -> Self {
        self.min_nodes = n;
        self.max_nodes = n;
        self
    }

    /// Toggles the consecutive events restriction (chainable).
    pub fn with_consecutive(mut self, yes: bool) -> Self {
        self.consecutive_events = yes;
        self
    }

    /// Toggles the constrained dynamic graphlet restriction (chainable).
    pub fn with_constrained(mut self, yes: bool) -> Self {
        self.constrained_dynamic = yes;
        self
    }

    /// Toggles static inducedness (chainable).
    pub fn with_static_induced(mut self, yes: bool) -> Self {
        self.static_induced = yes;
        self
    }

    /// The largest first-to-last timespan an admissible instance can
    /// have, judging from the configuration alone:
    /// `min(ΔC·(num_events−1), ΔW)` over whichever bounds are present;
    /// `None` when nothing bounds the span. Used by
    /// [`auto_select`](crate::engine::auto_select)'s window-occupancy
    /// heuristic and the sampling engine's window sizing.
    ///
    /// A **duration-aware** ΔC measures each gap from the previous
    /// event's *end*, so ΔC alone no longer bounds the span (event
    /// durations are a property of the graph, not the configuration);
    /// only a ΔW bound survives in that case. The sampling engine
    /// tightens this with the graph's actual maximum duration — see
    /// [`SamplingEngine::window_len_for`](crate::engine::SamplingEngine::window_len_for).
    pub fn max_admissible_span(&self) -> Option<Time> {
        let steps = self.num_events.saturating_sub(1).max(1) as Time;
        let c_span = match self.timing.delta_c {
            Some(c) if !self.duration_aware => Some(c.saturating_mul(steps)),
            _ => None,
        };
        match (c_span, self.timing.delta_w) {
            (None, None) => None,
            (Some(c), None) => Some(c),
            (None, Some(w)) => Some(w),
            (Some(c), Some(w)) => Some(c.min(w)),
        }
    }

    /// The largest first-to-last timespan an admissible instance can
    /// have **on this graph**: [`EnumConfig::max_admissible_span`]
    /// tightened for duration-aware ΔC, whose per-step gap runs from the
    /// previous event's *end* and is therefore bounded by
    /// `(ΔC + max event duration)·(num_events−1)` — a property of the
    /// graph, not the configuration alone. `None` means nothing bounds
    /// the span.
    ///
    /// This is the halo reach of the sharded engine (every event a walk
    /// starting at time `t` can touch lies in `[t, t + reach]`) and, at
    /// twice its value, the sampling engine's auto window length.
    pub fn admissible_reach(&self, graph: &TemporalGraph) -> Option<Time> {
        let steps = self.num_events.saturating_sub(1).max(1) as Time;
        let c_span = self.timing.delta_c.map(|c| {
            let max_dur = if self.duration_aware {
                graph.events().iter().map(|e| e.duration as Time).max().unwrap_or(0)
            } else {
                0
            };
            c.saturating_add(max_dur).saturating_mul(steps)
        });
        match (c_span, self.timing.delta_w) {
            (None, None) => None,
            (Some(c), None) => Some(c),
            (None, Some(w)) => Some(w),
            (Some(c), Some(w)) => Some(c.min(w)),
        }
    }
}

/// A concrete motif occurrence handed to enumeration callbacks.
#[derive(Debug, Clone, Copy)]
pub struct MotifInstance<'a> {
    /// Time-ordered event indices into the graph.
    pub events: &'a [EventIdx],
    /// The instance's canonical signature.
    pub signature: MotifSignature,
}

impl MotifInstance<'_> {
    /// Timestamps of the instance's events, in order.
    pub fn times(&self, graph: &TemporalGraph) -> Vec<Time> {
        self.events.iter().map(|&i| graph.event(i).time).collect()
    }

    /// `t_last − t_first` for this instance.
    pub fn timespan(&self, graph: &TemporalGraph) -> Time {
        let first = graph.event(self.events[0]).time;
        let last = graph.event(*self.events.last().expect("non-empty motif")).time;
        last - first
    }
}
