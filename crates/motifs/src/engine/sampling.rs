//! [`SamplingEngine`] — interval-sampling approximate counting with
//! confidence intervals, in the spirit of Liu, Benson & Charikar,
//! "Sampling methods for counting temporal motifs" (WSDM 2019) — the
//! algorithmic-improvement line of work the paper's related-work section
//! surveys, and the scaling story Liu–Guarrasi–Sarıyüce point to for
//! exact-counting baselines at large ΔW.
//!
//! ## Estimator
//!
//! The engine draws `samples` random windows of length `L` from the
//! timeline and enumerates the motif instances wholly contained in each.
//! An instance with timespan `s < L` is contained by a window starting
//! in an interval of length `L − s`, out of `T + L` possible starts, so
//! every detected instance is importance-weighted by
//! `(T + L) / (L − s)`; averaging the per-window weighted sums over the
//! sample budget gives an unbiased estimate of the true count.
//! Instances with `s ≥ L` are never observed — the auto-selected window
//! (twice the maximum admissible timespan) eliminates that bias; an
//! explicit shorter window re-introduces it, documented on
//! [`SamplingEngine::with_window_len`].
//!
//! Unlike the pre-trait free function this module replaces, the sampler
//! never materialises a per-window subgraph: it walks the *full* graph
//! through the shared [`WindowIndex`](tnm_graph::WindowIndex) (built
//! once per graph via the
//! [global index cache](tnm_graph::index_cache::global_index_cache)),
//! restricting start events to the window and discarding instances that
//! stick out past its end. Two consequences:
//!
//! * repeated window draws cost binary searches, not subgraph builds;
//! * graph-global restrictions (consecutive events, static inducedness,
//!   constrained dynamic graphlets) are evaluated against the full graph
//!   and are therefore **supported without bias** — the old free
//!   function had to reject them.
//!
//! ## Confidence intervals
//!
//! Each window's weighted sum is one i.i.d. draw of the estimator, so
//! the engine tracks per-signature first and second moments across
//! windows and reports `point ± Z_95 · SE` through
//! [`CountEngine::report`] (see [`Estimate`]). Exact engines inherit the
//! default `report`, which wraps their counts in zero-width intervals —
//! `tests/sampling_calibration.rs` checks the intervals are calibrated
//! against exact counts across models and seeds.
//!
//! ## Parallel draws
//!
//! Window draws are embarrassingly parallel — each is an independent
//! walk over its own event range — so with
//! [`SamplingEngine::with_threads`] the engine evaluates them on the
//! work-stealing executor shared with
//! [`ParallelEngine`](crate::engine::ParallelEngine) and the sharded
//! engine. Determinism is preserved exactly: all window offsets are
//! drawn up front from the seeded RNG (one stream, independent of the
//! thread count), each window's weighted sums are computed in isolation,
//! and the per-window results are folded into the moment accumulators
//! **in draw order** — the identical sequence of float additions the
//! serial sampler performs, so seeded estimates and confidence
//! intervals are bit-for-bit unchanged at any thread budget.

use crate::count::MotifCounts;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::engine::parallel::work_steal_map;
use crate::engine::report::{t_critical_95, EngineReport, Estimate};
use crate::engine::walker::{Walker, WindowedCandidates};
use crate::engine::{CountEngine, EngineCaps, WindowedEngine};
use crate::notation::MotifSignature;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tnm_graph::index_cache::global_index_cache;
use tnm_graph::{TemporalGraph, Time};

/// Default sample budget when none is given (CLI `--engine sampling`
/// without `--samples`).
pub const DEFAULT_SAMPLING_BUDGET: usize = 256;

/// Default RNG seed for sampling runs.
pub const DEFAULT_SAMPLING_SEED: u64 = 42;

/// Interval-sampling approximate counting engine.
///
/// Construct with [`SamplingEngine::new`]; the window length defaults to
/// twice the maximum motif timespan the configuration admits, which
/// keeps the estimator unbiased. Runs are deterministic given the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingEngine {
    samples: usize,
    seed: u64,
    window_len: Option<Time>,
    threads: usize,
}

impl SamplingEngine {
    /// A sampler drawing `samples` windows with the given RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize, seed: u64) -> Self {
        assert!(samples > 0, "sampling needs at least one window draw");
        SamplingEngine { samples, seed, window_len: None, threads: 1 }
    }

    /// Evaluates window draws on this many work-stealing worker threads
    /// (chainable). Estimates and confidence intervals are **bit-for-bit
    /// identical** at every thread budget — see the
    /// [module docs](self) on parallel draws.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the auto-selected window length (chainable).
    ///
    /// The estimator can only observe instances with timespan strictly
    /// below the window length: choosing `window_len` at or below the
    /// configuration's maximum admissible timespan biases totals low.
    /// The automatic choice (twice the maximum admissible timespan)
    /// avoids that; override only to trade bias for tighter windows.
    ///
    /// # Panics
    ///
    /// Panics if `window_len <= 0`.
    pub fn with_window_len(mut self, window_len: Time) -> Self {
        assert!(window_len > 0, "window length must be positive");
        self.window_len = Some(window_len);
        self
    }

    /// The sample budget.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The window length used for `cfg` on `graph`: the explicit
    /// override, or twice the maximum admissible motif timespan
    /// ([`EnumConfig::admissible_reach`] — for duration-aware ΔC the
    /// span bound is recovered from the graph's longest event duration,
    /// `(ΔC + max_duration)·(num_events−1)`).
    ///
    /// # Panics
    ///
    /// Panics when no window is set and nothing bounds the motif span —
    /// unbounded instances cannot be observed by any finite sampling
    /// window without bias.
    pub fn window_len_for(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> Time {
        if let Some(l) = self.window_len {
            return l;
        }
        match cfg.admissible_reach(graph) {
            Some(span) => span.saturating_mul(2).max(1),
            None => panic!(
                "sampling requires bounded timing (ΔC and/or ΔW) or an explicit window length"
            ),
        }
    }
}

impl CountEngine for SamplingEngine {
    fn name(&self) -> &'static str {
        "sampling"
    }

    fn capabilities(&self) -> EngineCaps {
        EngineCaps {
            parallel: self.threads > 1,
            windowed_pruning: true,
            // `enumerate` is exact and delegates to the windowed engine.
            deterministic_enumeration: true,
            supports_signature_filter: true,
        }
    }

    /// Rounded point estimates ([`EngineReport::counts`]). Call
    /// [`report`](CountEngine::report) to keep the intervals.
    fn count(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts {
        self.report(graph, cfg).counts
    }

    /// Exact enumeration, delegated to [`WindowedEngine`]: handing a
    /// callback the same instance once per containing sample window
    /// would be useless to every existing consumer, so only *counting*
    /// is approximate on this engine.
    fn enumerate(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
        callback: &mut dyn FnMut(&MotifInstance<'_>),
    ) {
        WindowedEngine.enumerate(graph, cfg, callback);
    }

    fn report(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> EngineReport {
        let window_len = self.window_len_for(graph, cfg);
        let t0 = graph.first_time().expect("graphs are non-empty by construction");
        let t1 = graph.last_time().expect("graphs are non-empty by construction");
        // A window can start anywhere that overlaps the timeline:
        // T + L possible starts, left-aligned at t0 - L + 1.
        let horizon = (t1 - t0) + window_len;
        let index = global_index_cache().get_or_build(graph);
        // All offsets come off the seeded RNG up front, in one stream:
        // the draw sequence — and therefore every estimate — is
        // independent of the thread budget.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let windows: Vec<SampleWindow> = (0..self.samples)
            .map(|_| {
                let offset = rng.gen_range(0..horizon.max(1));
                let start = t0 - window_len + 1 + offset;
                let end = start + window_len; // exclusive
                SampleWindow {
                    end,
                    lo: graph.first_event_at_or_after(start) as usize,
                    hi: graph.first_event_at_or_after(end) as usize,
                }
            })
            .collect();
        // Per-signature running first and second moments of the
        // per-window weighted sums (windows where a signature is absent
        // contribute zero to both, so only observations need updates).
        let mut moments: HashMap<MotifSignature, (f64, f64)> = HashMap::new();
        let mut total_moments = (0.0f64, 0.0f64);
        if self.threads <= 1 {
            let mut walker = Walker::new(graph, cfg, WindowedCandidates::new(&index));
            let mut acc: HashMap<MotifSignature, f64> = HashMap::new();
            for w in &windows {
                let total =
                    sample_window(graph, cfg, &mut walker, w, horizon, window_len, &mut acc);
                fold_window(&mut moments, &mut total_moments, &acc, total);
            }
        } else {
            // Parallel draws: each window is evaluated in isolation on
            // the shared work-stealing executor (chunk 1 — per-window
            // cost varies by orders of magnitude), then the per-window
            // results fold into the moments **in draw order**, the
            // identical float-addition sequence the serial loop above
            // performs.
            let per_worker = work_steal_map(
                windows.len(),
                self.threads,
                1,
                || (Walker::new(graph, cfg, WindowedCandidates::new(&index)), Vec::new()),
                |state, claimed| {
                    let (walker, out) = state;
                    for i in claimed {
                        let mut acc = HashMap::new();
                        let total = sample_window(
                            graph,
                            cfg,
                            walker,
                            &windows[i],
                            horizon,
                            window_len,
                            &mut acc,
                        );
                        out.push((i, acc, total));
                    }
                },
            );
            let mut slots: Vec<Option<(HashMap<MotifSignature, f64>, f64)>> =
                (0..windows.len()).map(|_| None).collect();
            for (i, acc, total) in per_worker.into_iter().flat_map(|(_, results)| results) {
                debug_assert!(slots[i].is_none(), "draw {i} evaluated twice");
                slots[i] = Some((acc, total));
            }
            for slot in slots {
                let (acc, total) = slot.expect("every draw evaluated exactly once");
                fold_window(&mut moments, &mut total_moments, &acc, total);
            }
        }
        let n = self.samples as f64;
        // Student's t at small budgets, 1.96 from 30 windows up: the
        // per-window sums are i.i.d. but few, and the plain normal
        // interval under-covers there (`tests/sampling_calibration.rs`
        // pins the small-budget coverage).
        let crit = t_critical_95(self.samples);
        let interval = |(sum, sumsq): (f64, f64)| {
            let point = sum / n;
            let half_width = if self.samples > 1 {
                let variance = ((sumsq - sum * sum / n) / (n - 1.0)).max(0.0);
                crit * (variance / n).sqrt()
            } else {
                // One window gives no variance estimate; an infinite
                // interval is honest, a zero-width one would dress an
                // approximation up as certainty.
                f64::INFINITY
            };
            Estimate { point, half_width }
        };
        let estimates = moments.into_iter().map(|(s, m)| (s, interval(m))).collect();
        EngineReport::from_estimates(self.name(), self.samples, estimates, interval(total_moments))
    }
}

/// One drawn sample window: exclusive end time plus the start-event
/// index range it admits.
#[derive(Debug, Clone, Copy)]
struct SampleWindow {
    end: Time,
    lo: usize,
    hi: usize,
}

/// Evaluates one window draw: clears `acc`, walks the window's start
/// events, and fills `acc` with the per-signature weighted sums
/// (accumulated in deterministic enumeration order — the map's
/// iteration order never influences float sums). Returns the window's
/// weighted total.
fn sample_window(
    graph: &TemporalGraph,
    cfg: &EnumConfig,
    walker: &mut Walker<'_, WindowedCandidates<'_>>,
    window: &SampleWindow,
    horizon: Time,
    window_len: Time,
    acc: &mut HashMap<MotifSignature, f64>,
) -> f64 {
    acc.clear();
    let mut window_total = 0.0;
    if window.hi - window.lo >= cfg.num_events {
        let end = window.end;
        let total = &mut window_total;
        walker.run_range(window.lo..window.hi, |inst| {
            let last = graph.event(*inst.events.last().expect("non-empty motif")).time;
            if last >= end {
                return; // sticks out of this window: not contained
            }
            let span = inst.timespan(graph);
            // span <= L - 1 within a contained instance, so the
            // containment interval L - span is at least 1.
            let weight = horizon as f64 / (window_len - span) as f64;
            *acc.entry(inst.signature).or_insert(0.0) += weight;
            *total += weight;
        });
    }
    window_total
}

/// Folds one window's weighted sums into the running moments.
/// Per-signature sums see their own additions in window order
/// regardless of how the map iterates, so folding windows in draw order
/// reproduces the serial sampler's float arithmetic exactly.
fn fold_window(
    moments: &mut HashMap<MotifSignature, (f64, f64)>,
    total_moments: &mut (f64, f64),
    acc: &HashMap<MotifSignature, f64>,
    window_total: f64,
) {
    for (&sig, &x) in acc.iter() {
        let m = moments.entry(sig).or_insert((0.0, 0.0));
        m.0 += x;
        m.1 += x * x;
    }
    total_moments.0 += window_total;
    total_moments.1 += window_total * window_total;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tnm_graph::TemporalGraphBuilder;

    /// Random-ish but deterministic graph with plenty of 2/3-event motifs.
    fn test_graph() -> TemporalGraph {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = TemporalGraphBuilder::new();
        let mut t = 0i64;
        for _ in 0..4000 {
            t += rng.gen_range(1i64..6);
            let u: u32 = rng.gen_range(0..30);
            let mut v: u32 = rng.gen_range(0..30);
            if v == u {
                v = (v + 1) % 30;
            }
            b.push(tnm_graph::Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    #[test]
    fn estimates_close_to_exact() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(20));
        let exact = WindowedEngine.count(&g, &cfg);
        let report = SamplingEngine::new(400, 42).with_window_len(200).report(&g, &cfg);
        let exact_total = exact.total() as f64;
        let rel_err = (report.total.point - exact_total).abs() / exact_total;
        assert!(
            rel_err < 0.15,
            "estimate {} too far from exact {exact_total} (rel err {rel_err:.3})",
            report.total.point
        );
        assert!(report.total.half_width > 0.0, "sampled totals must carry an interval");
        assert!(!report.exact);
        assert_eq!(report.samples, Some(400));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(20));
        let engine = SamplingEngine::new(50, 9).with_window_len(100);
        let a = engine.report(&g, &cfg);
        let b = engine.report(&g, &cfg);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.total, b.total);
        for (sig, e) in a.iter() {
            assert_eq!(b.estimate(sig), e);
        }
        let c = SamplingEngine::new(50, 10).with_window_len(100).report(&g, &cfg);
        assert_ne!(a.total, c.total, "different seeds should diverge");
    }

    #[test]
    fn parallel_draws_are_bit_identical_to_serial() {
        // The whole point of the ordered fold: the thread budget must
        // not perturb a single bit of a seeded estimate. Compare every
        // per-signature point and half-width with exact float equality.
        let g = test_graph();
        for cfg in [
            EnumConfig::new(2, 3).with_timing(Timing::only_w(20)),
            EnumConfig::new(3, 3).with_timing(Timing::only_w(40)).with_consecutive(true),
        ] {
            let serial = SamplingEngine::new(120, 9).report(&g, &cfg);
            for threads in [2usize, 4, 7] {
                let par = SamplingEngine::new(120, 9).with_threads(threads).report(&g, &cfg);
                assert_eq!(par.counts, serial.counts, "threads={threads}");
                assert_eq!(par.total.point, serial.total.point, "threads={threads}");
                assert_eq!(par.total.half_width, serial.total.half_width, "threads={threads}");
                for (sig, e) in serial.iter() {
                    assert_eq!(par.estimate(sig), e, "threads={threads}, sig {sig}");
                }
            }
        }
        assert!(SamplingEngine::new(8, 1).with_threads(4).capabilities().parallel);
        assert!(!SamplingEngine::new(8, 1).capabilities().parallel);
    }

    #[test]
    fn count_is_rounded_report() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(10));
        let engine = SamplingEngine::new(50, 1).with_window_len(100);
        let counts = engine.count(&g, &cfg);
        let report = engine.report(&g, &cfg);
        assert_eq!(counts, report.counts);
        for (sig, e) in report.iter() {
            assert_eq!(counts.get(sig), e.point.round().max(0.0) as u64);
        }
    }

    #[test]
    fn auto_window_length_covers_admissible_spans() {
        let g = TemporalGraphBuilder::new().event(0, 1, 0).event(1, 2, 5).build().unwrap();
        let e = SamplingEngine::new(10, 1);
        assert_eq!(
            e.window_len_for(&g, &EnumConfig::new(3, 3).with_timing(Timing::only_w(50))),
            100
        );
        assert_eq!(
            e.window_len_for(&g, &EnumConfig::new(3, 3).with_timing(Timing::only_c(10))),
            40
        );
        assert_eq!(
            e.window_len_for(&g, &EnumConfig::new(4, 4).with_timing(Timing::both(10, 25))),
            50,
            "both bounds: min(ΔC·(k−1), ΔW) = min(30, 25)"
        );
        assert_eq!(e.window_len_for(&g, &EnumConfig::new(2, 2).with_timing(Timing::only_w(0))), 1);
        assert_eq!(
            SamplingEngine::new(10, 1)
                .with_window_len(7)
                .window_len_for(&g, &EnumConfig::new(2, 2)),
            7,
            "explicit window wins and permits unbounded timing"
        );
        // Duration-aware ΔC: the graph's longest duration widens each
        // admissible step, and the window must follow.
        let long = TemporalGraphBuilder::new()
            .event_with_duration(0, 1, 0, 30)
            .event(1, 2, 35)
            .build()
            .unwrap();
        let mut aware = EnumConfig::new(3, 3).with_timing(Timing::only_c(10));
        aware.duration_aware = true;
        assert_eq!(
            e.window_len_for(&long, &aware),
            160,
            "2 · (ΔC + max_duration) · (k−1) = 2 · 40 · 2"
        );
        assert_eq!(e.window_len_for(&g, &aware), 40, "zero durations degrade to plain ΔC");
    }

    #[test]
    fn duration_aware_sampling_is_calibrated() {
        // Durations push admissible spans past ΔC·(k−1); the auto window
        // must still observe those instances (estimates would otherwise
        // bias low with a confident-looking interval).
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = TemporalGraphBuilder::new();
        let mut t = 0i64;
        for _ in 0..1500 {
            t += rng.gen_range(1i64..5);
            let u: u32 = rng.gen_range(0..12);
            let v = (u + 1 + rng.gen_range(0..10u32)) % 12;
            b.push(tnm_graph::Event::with_duration(u, v, t, rng.gen_range(0u32..40)));
        }
        let g = b.build().unwrap();
        let mut cfg = EnumConfig::new(2, 3).with_timing(Timing::only_c(8));
        cfg.duration_aware = true;
        let exact = WindowedEngine.count(&g, &cfg).total() as f64;
        assert!(exact > 0.0, "test graph must admit duration-aware motifs");
        let report = SamplingEngine::new(600, 2).report(&g, &cfg);
        assert!(
            report.total.contains(exact),
            "estimate {} (±{:.1}) should cover exact {exact}",
            report.total.point,
            report.total.half_width
        );
    }

    #[test]
    #[should_panic(expected = "bounded timing")]
    fn unbounded_timing_needs_explicit_window() {
        let g = test_graph();
        SamplingEngine::new(10, 1).report(&g, &EnumConfig::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "at least one window draw")]
    fn zero_samples_rejected() {
        SamplingEngine::new(0, 1);
    }

    #[test]
    fn single_window_interval_is_unbounded() {
        // One draw has no variance estimate: the interval must be
        // infinite, never a zero-width claim of certainty.
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(20));
        let r = SamplingEngine::new(1, 3).report(&g, &cfg);
        assert!(r.total.half_width.is_infinite());
        assert!(r.total.contains(0.0) && r.total.contains(1e12));
        assert!(!r.total.is_exact());
    }

    #[test]
    fn global_restrictions_are_supported() {
        // The pre-trait sampler rejected graph-global restrictions; the
        // full-graph walk evaluates them exactly.
        let g = test_graph();
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(40)).with_consecutive(true);
        let exact = WindowedEngine.count(&g, &cfg).total() as f64;
        let report = SamplingEngine::new(1_000, 4).report(&g, &cfg);
        assert!(
            report.total.contains(exact),
            "restricted estimate {} (±{:.1}) should cover exact {exact}",
            report.total.point,
            report.total.half_width
        );
    }

    #[test]
    fn enumerate_is_exact() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(10));
        let mut sampled = 0u64;
        SamplingEngine::new(5, 1).enumerate(&g, &cfg, &mut |_| sampled += 1);
        assert_eq!(sampled, WindowedEngine.count(&g, &cfg).total());
    }
}
