//! `tnm` — the temporal-network-motifs experiment driver.
//!
//! Regenerates every table and figure of the paper on the synthetic
//! corpus, and exposes ad-hoc counting/generation utilities. Run
//! `tnm help` for the command list.

mod args;

use args::Args;
use std::process::ExitCode;
use tnm_analysis::experiments::{self, Corpus, RunConfig};
use tnm_datasets::DatasetSpec;
use tnm_graph::stats::GraphStats;
use tnm_motifs::cycles::{count_temporal_cycles, CycleConfig};
use tnm_motifs::prelude::*;

const HELP: &str = "\
tnm — Temporal Network Motifs: Models, Limitations, Evaluation (reproduction)

USAGE: tnm <command> [flags]

Experiment commands (all accept --scale F, --seed N, --csv, --engine E,
--threads N, --samples K):
  table2            Dataset statistics (paper Table 2)
  table3 [--full]   Consecutive events restriction (Table 3; --full = Table 6)
  table4 [--full]   Constrained dynamic graphlets (Table 4; --full = Table 7)
  table5            Event-pair counts vs timing constraints (Table 5)
  fig1              Model validity matrix (Figure 1)
  fig2              Notation & event-pair alphabet (Figure 2)
  fig3 [--include-4e] Event-pair ratios only-dW vs only-dC (Figure 3)
  fig4 [--all]      Intermediate event behaviour (Figure 4; --all = Figure 9)
  fig5 [--all]      Motif timespan distributions (Figure 5; --all = Figure 10)
  fig6              Event-pair sequence heat maps (Figure 6)
  all               Run every table and figure

Utility commands:
  list              List the nine datasets
  stats --dataset NAME [--seed N]        Statistics of one synthetic dataset
  generate --dataset NAME --out FILE     Write a synthetic dataset as an edge list
  count --dataset NAME [--events K] [--nodes N] [--dc X] [--dw Y]
        [--consecutive] [--induced] [--constrained] [--top K]
        [--engine E] [--threads N] [--samples K]
        [--shard-events N] [--max-resident-shards N]
        [--trace FILE] [--explain]
                                         Count motifs under a custom model
                                         (sampling engine prints 95% CIs).
                                         --trace FILE records hierarchical
                                         timed spans for the run and writes
                                         them as Chrome-trace JSON (open in
                                         chrome://tracing or Perfetto); a
                                         distributed run decomposes into
                                         plan/spill/spawn/walk/merge phases.
                                         --explain prints the auto-select
                                         decision with its measured inputs
                                         (event count, expected window
                                         events, stream eligibility) before
                                         counting.
  count-batch --dataset NAME (--spec FILE | --all-3e-motifs [--dw Y])
        [--engine E] [--threads N] [--top K] ...
                                         Count many motif configurations in
                                         shared traversals (~1 walk + N
                                         projections instead of N walks).
                                         --spec FILE: one configuration per
                                         line of `key=value` tokens (events=,
                                         nodes=, min-nodes=, dc=, dw=, sig=)
                                         plus bare restriction words
                                         consecutive / induced / constrained;
                                         `#` comments and blank lines are
                                         ignored; every line needs dc= and/or
                                         dw=. --all-3e-motifs: all 36
                                         three-event motifs within --dw
                                         (default 3000). Results are
                                         bit-identical to per-config `count`.
  cycles --dataset NAME [--dw X] [--max-len L]
                                         Enumerate simple temporal cycles
  help              This message

Service commands:
  serve [--host H] [--port N] [--threads N] [--enumerate-cap K]
        [--http-port N]                  Start the resident counting daemon:
                                         loaded graphs (and their window
                                         indexes) stay warm across queries,
                                         and subscription counts update
                                         incrementally — O(new events) — under
                                         live appends. Default 127.0.0.1:7878;
                                         --port 0 picks a free port. --threads
                                         caps any single request's budget.
                                         --http-port N adds an HTTP scrape
                                         surface on the same interface:
                                         GET /metrics (Prometheus text),
                                         /healthz, /timeseries (JSON ring of
                                         windowed metric deltas, sampled every
                                         second). N=0 picks a free port.
  client [--addr H:P] (--stats | --metrics | --slow-queries | --shutdown |
         --dataset NAME count-flags [--name G]
         [--hold-out K] [--append-batch B]
         [--trace FILE] [--profile])
                                         Scripted client for tnm serve. With a
                                         dataset: loads it (as G, default the
                                         dataset name) and counts through the
                                         same Query path as `count`, printing
                                         the same report. With --hold-out K:
                                         loads all but the last K events,
                                         subscribes the configuration, streams
                                         the held-out tail through incremental
                                         appends of B events (default 512),
                                         and prints the final live counts —
                                         identical to counting the full graph.
                                         --trace FILE asks the server to trace
                                         the request and writes its stitched
                                         span tree (serve root, engine phases,
                                         distributed worker spans — one trace
                                         id) as Chrome-trace JSON. --profile
                                         prints the same trace as per-phase
                                         totals plus the request's metrics
                                         delta (events scanned, cache hits).
                                         --stats / --metrics / --slow-queries
                                         / --shutdown talk to a running daemon
                                         without loading anything; --metrics
                                         prints the server's serve.* counters
                                         and latency histograms as Prometheus
                                         text; --slow-queries prints the
                                         worst-latency query table and the
                                         flight recorder of recent queries.
  top [--addr H:P] [--interval MS] [--iters N]
                                         Live terminal view of a daemon's
                                         /timeseries feed (requires serve
                                         --http-port): per-window query and
                                         append rates, p50/p99 latency per
                                         query kind, cache hit rates, resident
                                         shard events. Default addr
                                         127.0.0.1:9090, refresh every 1000 ms;
                                         --iters N stops after N frames
                                         (0 = run until interrupted).

Flags:
  --scale F     Scale dataset event budgets by F (default 1.0)
  --seed N      Corpus seed (default the standard experiment seed)
  --csv         Emit CSV instead of a rendered table (where supported)
  --engine E    Counting engine: backtrack | windowed | parallel |
                stream | sharded | distributed | sampling | auto
                (default auto; see the tnm-motifs rustdoc on choosing
                one). `stream` counts without enumerating instances —
                exact and near-linear in events for Paranjape-shape jobs
                (--dw only, no --induced or other restrictions, <=3
                events on <=3 nodes), falling back to the windowed
                walker otherwise; `auto` picks it whenever eligible.
                `sharded` counts exact totals over time-slice shards and
                can spill them to disk for graphs larger than memory.
                `distributed` farms the same shards out to worker
                processes over a framed wire protocol — exact, with
                crashed workers' shards rescheduled onto survivors.
                `sampling` is approximate: counts are point estimates
                with 95% confidence intervals. fig4/fig5 enumerate exact
                instance statistics and reject it.
  --threads N   Thread budget for parallel-capable engines (the sharded
                engine work-steals within each shard; the sampling
                engine evaluates window draws in parallel with
                bit-identical seeded results; the distributed engine
                spreads the budget across its workers, N/workers
                threads inside each worker process)
  --samples K   Sample-window budget for --engine sampling (quadruple it
                to halve the confidence intervals). The sampler draws its
                RNG seed from --seed. Rejected for exact engines.
  --workers N   Worker processes for --engine distributed (default 2).
                Rejected for other engines.
  --shard-events N
                Target start events per shard for --engine sharded or
                distributed (default 16384). Rejected for other engines.
  --max-resident-shards N
                Spill shards to disk, keeping at most N loaded at a time
                (--engine sharded only). Without it, shards are cut from
                the in-memory graph one at a time; with it, the full
                write/evict/reload cycle runs and bounds the counting
                working set for out-of-core use.
";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let command = match argv.next() {
        Some(c) => c,
        None => {
            eprint!("{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&command, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn corpus_from(args: &Args) -> Result<Corpus, Box<dyn std::error::Error>> {
    let scale: f64 = args.get_parsed("scale", 1.0)?;
    let seed: u64 = args.get_parsed("seed", experiments::CORPUS_SEED)?;
    let corpus = if (scale - 1.0).abs() < f64::EPSILON {
        Corpus::with_seed(seed)
    } else {
        Corpus::scaled(scale, seed)
    };
    // The dataset may be named via --dataset or as a positional argument.
    Ok(match args.get("dataset").or_else(|| args.positional(0)) {
        Some(name) => {
            let only = corpus.only(&[name]);
            if only.is_empty() {
                return Err(format!("unknown dataset `{name}` (see `tnm list`)").into());
            }
            only
        }
        None => corpus,
    })
}

fn run_config_from(args: &Args) -> Result<RunConfig, Box<dyn std::error::Error>> {
    let mut rc = RunConfig::default();
    if let Some(name) = args.get("engine") {
        rc.engine = name.parse::<EngineKind>()?;
    }
    if let EngineKind::Sampling { samples, seed } = rc.engine {
        let samples: u32 = args.get_parsed("samples", samples)?;
        if samples == 0 {
            return Err("--samples must be at least 1".into());
        }
        rc.engine = EngineKind::Sampling { samples, seed: args.get_parsed("seed", seed)? };
    } else if args.has("samples") {
        return Err(format!(
            "--samples is only valid with --engine sampling (engine `{}` counts exactly)",
            rc.engine
        )
        .into());
    }
    match rc.engine {
        EngineKind::Sharded { shard_events, max_resident_shards } => {
            let shard_events: usize = args.get_parsed("shard-events", shard_events)?;
            if shard_events == 0 {
                return Err("--shard-events must be at least 1".into());
            }
            rc.engine = EngineKind::Sharded {
                shard_events,
                max_resident_shards: args.get_parsed("max-resident-shards", max_resident_shards)?,
            };
        }
        EngineKind::Distributed { workers, shard_events } => {
            let workers: usize = args.get_parsed("workers", workers)?;
            if workers == 0 {
                return Err("--workers must be at least 1".into());
            }
            let shard_events: usize = args.get_parsed("shard-events", shard_events)?;
            if shard_events == 0 {
                return Err("--shard-events must be at least 1".into());
            }
            if args.has("max-resident-shards") {
                return Err(format!(
                    "--max-resident-shards is only valid with --engine sharded (got engine \
                     `{}`; the distributed engine always spills every shard)",
                    rc.engine
                )
                .into());
            }
            rc.engine = EngineKind::Distributed { workers, shard_events };
        }
        _ => {
            if args.has("shard-events") {
                return Err(format!(
                    "--shard-events is only valid with --engine sharded or --engine \
                     distributed (got engine `{}`)",
                    rc.engine
                )
                .into());
            }
            if args.has("max-resident-shards") {
                return Err(format!(
                    "--max-resident-shards is only valid with --engine sharded (got engine \
                     `{}`)",
                    rc.engine
                )
                .into());
            }
        }
    }
    if args.has("workers") && !matches!(rc.engine, EngineKind::Distributed { .. }) {
        return Err(format!(
            "--workers is only valid with --engine distributed (got engine `{}`)",
            rc.engine
        )
        .into());
    }
    rc.threads = args.get_parsed("threads", rc.threads)?;
    Ok(rc)
}

/// Builds the `count`/`client` verbs' [`EnumConfig`] from the shared
/// flag set, validated through [`EnumConfig::validate`] — the same
/// typed [`ConfigError`] path the Query API and the serve daemon use.
fn count_cfg_from(args: &Args) -> Result<EnumConfig, Box<dyn std::error::Error>> {
    let events: usize = args.get_parsed("events", 3)?;
    let nodes: usize = args.get_parsed("nodes", 3)?;
    let dc: i64 = args.get_parsed("dc", 0)?;
    let dw: i64 = args.get_parsed("dw", 0)?;
    let timing = match (dc > 0, dw > 0) {
        (true, true) => Timing::both(dc, dw),
        (true, false) => Timing::only_c(dc),
        (false, true) => Timing::only_w(dw),
        (false, false) => return Err("count requires --dc and/or --dw".into()),
    };
    let cfg = EnumConfig::try_new(events, nodes)?
        .with_timing(timing)
        .with_consecutive(args.has("consecutive"))
        .with_static_induced(args.has("induced"))
        .with_constrained(args.has("constrained"));
    cfg.validate()?;
    Ok(cfg)
}

/// Renders an [`EngineReport`] in the `count` verb's format — shared
/// verbatim by `count` and `client` so a served query prints exactly
/// like a local one (modulo the engine label).
fn print_report(name: &str, report: &EngineReport, timing: Timing, top: usize) {
    let counts = &report.counts;
    println!(
        "{}: {} instances across {} motif types ({timing}, engine {})",
        name,
        counts.total(),
        counts.num_signatures(),
        report.engine
    );
    if let Some(samples) = report.samples {
        println!(
            "  approximate: {samples} sample windows, estimated total {} (95% CI)",
            report.total
        );
    }
    for (sig, n) in counts.top_k(top) {
        let pairs: String =
            sig.event_pair_sequence().into_iter().map(|p| p.map_or('-', |t| t.letter())).collect();
        if report.exact {
            println!("  {sig:<12} {n:>10}  pairs {pairs}");
        } else {
            let e = report.estimate(sig);
            println!("  {sig:<12} {n:>10} ± {:<8.1} pairs {pairs}", e.half_width);
        }
    }
}

/// Renders a nanosecond quantity at a human scale.
fn format_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} µs", ns as f64 / 1_000.0),
        10_000_000..=9_999_999_999 => format!("{:.1} ms", ns as f64 / 1_000_000.0),
        _ => format!("{:.2} s", ns as f64 / 1_000_000_000.0),
    }
}

/// Handles a traced serve request's telemetry: writes the span tree as
/// Chrome-trace JSON (`--trace FILE`) and/or prints the per-phase
/// profile with the request's metrics delta (`--profile`).
fn report_trace(
    trace: &TraceReply,
    path: Option<&str>,
    profile: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let trace_id = trace.spans.first().map_or(0, |s| s.trace_id);
    if let Some(path) = path {
        std::fs::write(path, tnm_obs::chrome_trace(&trace.spans))
            .map_err(|e| format!("cannot write trace file `{path}`: {e}"))?;
        println!(
            "wrote {} span(s) to {path} (Chrome-trace JSON, trace id {trace_id:016x})",
            trace.spans.len()
        );
    }
    if profile {
        println!("profile (trace id {trace_id:016x}, {} span(s)):", trace.spans.len());
        // Per-phase totals: spans aggregated by name, slowest first.
        let mut phases: std::collections::BTreeMap<&str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for s in &trace.spans {
            let e = phases.entry(s.name.as_str()).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        let mut phases: Vec<_> = phases.into_iter().collect();
        phases.sort_by_key(|&(_, (_, total))| std::cmp::Reverse(total));
        for (name, (n, total)) in phases {
            println!("  {name:<28} {n:>4} span(s) {:>12} total", format_ns(total));
        }
        if !trace.metrics.counters.is_empty() {
            println!("  counters over this request:");
            for (name, v) in &trace.metrics.counters {
                println!("    {name:<30} {v}");
            }
        }
    }
    Ok(())
}

/// One blocking HTTP/1.1 GET against the daemon's scrape surface,
/// returning the response body. Std-only on purpose — the scrape
/// protocol is one request line and one `Connection: close` response.
fn http_get(addr: &str, path: &str) -> Result<String, Box<dyn std::error::Error>> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| {
        format!("cannot connect to http://{addr}: {e} (is `tnm serve` running with --http-port?)")
    })?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {addr}{path}"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("{addr}{path} answered `{status}`").into());
    }
    Ok(body.to_string())
}

/// One `tnm top` frame: the latest time-series window rendered as
/// rates, latency quantiles, cache hit rates, and residency.
fn render_top(addr: &str, points: &[tnm_obs::TimePoint]) {
    use std::io::IsTerminal;
    if std::io::stdout().is_terminal() {
        // Repaint in place only when attached to a terminal; piped
        // output stays an appendable log.
        print!("\x1b[2J\x1b[H");
    }
    let Some(last) = points.last() else {
        println!("tnm top — {addr}: no samples yet (the daemon samples once per second)");
        return;
    };
    let secs = last.interval_ms.max(1) as f64 / 1000.0;
    println!("tnm top — {addr} — {} sample(s) retained, last window {:.1}s", points.len(), secs);
    let d = &last.delta;
    let rate = |name: &str| d.counters.get(name).copied().unwrap_or(0) as f64 / secs;
    println!(
        "  queries/s {:>9.2}    appended events/s {:>9.2}",
        rate("serve.queries"),
        rate("serve.appends")
    );
    for (kind, hist) in [
        ("count", "serve.query.count_ns"),
        ("report", "serve.query.report_ns"),
        ("enumerate", "serve.query.enumerate_ns"),
        ("batch", "serve.query.batch_ns"),
    ] {
        if let Some(h) = d.histograms.get(hist) {
            if h.count > 0 {
                println!(
                    "  {kind:<10} {:>5} in window    p50 {:>10}    p99 {:>10}",
                    h.count,
                    format_ns(h.percentile(0.5)),
                    format_ns(h.percentile(0.99))
                );
            }
        }
    }
    for (label, hits, misses) in [
        ("index cache", "cache.index.hits", "cache.index.misses"),
        ("proj cache", "cache.proj.hits", "cache.proj.misses"),
    ] {
        let hits = d.counters.get(hits).copied().unwrap_or(0);
        let misses = d.counters.get(misses).copied().unwrap_or(0);
        if hits + misses > 0 {
            println!(
                "  {label:<12} {:>5.1}% hit rate ({hits} hits / {misses} misses)",
                100.0 * hits as f64 / (hits + misses) as f64
            );
        }
    }
    if let Some(g) = d.gauges.get("shard.resident_events") {
        println!("  resident shard events {} (peak {})", g.value, g.peak);
    }
}

/// The shared flag set plus per-command extras, for `ensure_known` —
/// one definition of the common list instead of a hand-copied one per
/// subcommand.
fn allowed_flags<'a>(common: &[&'a str], extras: &[&'a str]) -> Vec<&'a str> {
    let mut v = common.to_vec();
    v.extend_from_slice(extras);
    v
}

/// Parses a `count-batch` spec: one configuration per line of
/// whitespace-separated tokens — `key=value` pairs (`events=`, `nodes=`,
/// `min-nodes=`, `dc=`, `dw=`, `sig=`) and the bare restriction words
/// `consecutive` / `induced` / `constrained`. `#` starts a comment;
/// blank lines are skipped. Mirroring the `count` verb, every line must
/// bound the walk with `dc=` and/or `dw=`; `sig=` derives the event and
/// node budgets from the signature (and rejects a conflicting `events=`
/// or `nodes=`).
fn parse_batch_spec(text: &str) -> Result<Vec<EnumConfig>, Box<dyn std::error::Error>> {
    let mut batch = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("spec line {}: {msg}", idx + 1);
        let mut events: Option<usize> = None;
        let mut nodes: Option<usize> = None;
        let mut min_nodes: Option<usize> = None;
        let mut dc: Option<i64> = None;
        let mut dw: Option<i64> = None;
        let mut target: Option<MotifSignature> = None;
        let mut consecutive = false;
        let mut induced = false;
        let mut constrained = false;
        for tok in line.split_whitespace() {
            let bad = || at(format!("invalid token `{tok}`"));
            match tok.split_once('=') {
                Some(("events", v)) => events = Some(v.parse().map_err(|_| bad())?),
                Some(("nodes", v)) => nodes = Some(v.parse().map_err(|_| bad())?),
                Some(("min-nodes", v)) => min_nodes = Some(v.parse().map_err(|_| bad())?),
                Some(("dc", v)) => dc = Some(v.parse().map_err(|_| bad())?),
                Some(("dw", v)) => dw = Some(v.parse().map_err(|_| bad())?),
                Some(("sig", v)) => target = Some(v.parse().map_err(|_| bad())?),
                None if tok == "consecutive" => consecutive = true,
                None if tok == "induced" => induced = true,
                None if tok == "constrained" => constrained = true,
                _ => {
                    return Err(at(format!(
                        "unknown token `{tok}` (expected events= nodes= min-nodes= dc= dw= sig= \
                         or consecutive/induced/constrained)"
                    ))
                    .into())
                }
            }
        }
        if dc.is_none() && dw.is_none() {
            return Err(at("needs dc= and/or dw= (like the `count` verb)".to_string()).into());
        }
        if dc.is_some_and(|v| v <= 0) || dw.is_some_and(|v| v <= 0) {
            return Err(at("dc= and dw= must be positive".to_string()).into());
        }
        // Build first, validate once: the typed [`ConfigError`] path
        // catches shape conflicts (an explicit events=/nodes= fighting
        // sig=), bad node budgets, and min-nodes out of range — the
        // same checks the Query API and the serve daemon run.
        let mut cfg = match target {
            Some(t) => {
                let mut c = EnumConfig::for_signature(t);
                if let Some(e) = events {
                    c.num_events = e;
                }
                if let Some(n) = nodes {
                    c.max_nodes = n;
                }
                c
            }
            None => EnumConfig::try_new(events.unwrap_or(3), nodes.unwrap_or(3))
                .map_err(|e| at(e.to_string()))?,
        };
        cfg = cfg
            .with_timing(Timing { delta_c: dc, delta_w: dw })
            .with_consecutive(consecutive)
            .with_static_induced(induced)
            .with_constrained(constrained);
        if let Some(m) = min_nodes {
            cfg.min_nodes = m;
        }
        cfg.validate().map_err(|e| at(e.to_string()))?;
        batch.push(cfg);
    }
    if batch.is_empty() {
        return Err("batch spec contains no configurations (comments and blank lines only)".into());
    }
    Ok(batch)
}

/// Resolves the `count-batch` configuration list from `--spec FILE` or
/// `--all-3e-motifs` — exactly one of the two must be given.
fn batch_from(args: &Args) -> Result<Vec<EnumConfig>, Box<dyn std::error::Error>> {
    match (args.get("spec"), args.has("all-3e-motifs")) {
        (Some(_), true) => Err("--spec and --all-3e-motifs are mutually exclusive".into()),
        (None, false) => Err("count-batch requires --spec FILE or --all-3e-motifs".into()),
        (Some(path), false) => {
            if args.has("dw") {
                return Err("--dw sets the --all-3e-motifs window; spec lines carry their own \
                            dw= values"
                    .into());
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec file `{path}`: {e}"))?;
            parse_batch_spec(&text)
        }
        (None, true) => {
            let dw: i64 = args.get_parsed("dw", 3000)?;
            if dw <= 0 {
                return Err("--dw must be positive".into());
            }
            Ok(all_3e()
                .into_iter()
                .map(|m| EnumConfig::for_signature(m).with_timing(Timing::only_w(dw)))
                .collect())
        }
    }
}

/// One-line rendering of a batch member for the `count-batch` output.
fn batch_cfg_summary(cfg: &EnumConfig) -> String {
    let mut s = match cfg.signature_filter {
        Some(t) => format!("sig {t}"),
        None => format!("{}e on {}..={} nodes", cfg.num_events, cfg.min_nodes, cfg.max_nodes),
    };
    s.push_str(&format!(", {}", cfg.timing));
    for (flag, label) in [
        (cfg.consecutive_events, "consecutive"),
        (cfg.static_induced, "induced"),
        (cfg.constrained_dynamic, "constrained"),
    ] {
        if flag {
            s.push_str(", ");
            s.push_str(label);
        }
    }
    s
}

/// The position/timespan figures enumerate exact per-instance statistics
/// that an approximate counter cannot provide; asking for the sampling
/// engine there must be an error, not a silent exact run.
fn reject_sampling_engine(args: &Args, what: &str) -> Result<(), Box<dyn std::error::Error>> {
    if let EngineKind::Sampling { .. } = run_config_from(args)?.engine {
        return Err(format!(
            "{what} enumerates exact instance statistics; --engine sampling is not applicable"
        )
        .into());
    }
    Ok(())
}

fn run(command: &str, args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let common = [
        "scale",
        "seed",
        "csv",
        "dataset",
        "engine",
        "threads",
        "samples",
        "workers",
        "shard-events",
        "max-resident-shards",
    ];
    match command {
        "help" | "--help" | "-h" => print!("{HELP}"),
        // Hidden: the distributed engine's worker side. Spawned by the
        // coordinator as `tnm worker` with framed jobs on stdin and
        // framed replies on stdout; not intended for interactive use,
        // so it stays out of the help text. TNM_WORKER_EXIT_AFTER is
        // the crash-rescheduling tests' fault-injection knob.
        "worker" => {
            args.ensure_known(&[])?;
            // The coordinator propagates its obs flag via TNM_OBS=1 so
            // worker-side walks record the same metrics; the snapshots
            // travel back in the reply frames and merge on the
            // coordinator.
            if std::env::var("TNM_OBS").is_ok_and(|v| v == "1") {
                tnm_obs::set_enabled(true);
            }
            let exit_after =
                std::env::var("TNM_WORKER_EXIT_AFTER").ok().and_then(|v| v.parse::<usize>().ok());
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            tnm_motifs::engine::run_worker(
                stdin.lock(),
                std::io::BufWriter::new(stdout.lock()),
                exit_after,
            )?;
        }
        "list" => {
            args.ensure_known(&common)?;
            for spec in DatasetSpec::all() {
                println!(
                    "{:<18} {:>7} nodes {:>7} events  median gap {:>5.0}s  ({:?})",
                    spec.name, spec.num_nodes, spec.num_events, spec.median_gap, spec.domain
                );
            }
        }
        "stats" => {
            args.ensure_known(&common)?;
            for e in &corpus_from(args)?.entries {
                let s = GraphStats::compute(&e.graph);
                println!(
                    "{}: {} nodes, {} events, {} edges, {} timestamps, \
                     unique {:.1}%, median gap {:.0}s, timespan {}s",
                    e.spec.name,
                    s.nodes,
                    s.events,
                    s.static_edges,
                    s.unique_timestamps,
                    s.unique_timestamp_fraction * 100.0,
                    s.median_inter_event_time,
                    s.timespan
                );
            }
        }
        "generate" => {
            args.ensure_known(&["scale", "seed", "dataset", "out"])?;
            let corpus = corpus_from(args)?;
            let out = args.get("out").ok_or("generate requires --out FILE")?;
            let entry = corpus.entries.first().ok_or("generate requires --dataset NAME")?;
            tnm_graph::io::write_edge_list_file(&entry.graph, out)?;
            println!("wrote {} events to {out}", entry.graph.num_events());
        }
        "count" => {
            args.ensure_known(&allowed_flags(
                &common,
                &[
                    "events",
                    "nodes",
                    "dc",
                    "dw",
                    "consecutive",
                    "induced",
                    "constrained",
                    "top",
                    "trace",
                    "explain",
                ],
            ))?;
            let corpus = corpus_from(args)?;
            let entry = corpus.entries.first().ok_or("count requires --dataset NAME")?;
            let cfg = count_cfg_from(args)?;
            let rc = run_config_from(args)?;
            let top: usize = args.get_parsed("top", 20)?;
            let timing = cfg.timing;
            // TNM_OBS=1 turns the metrics registry on for this run (the
            // same knob the distributed worker honors), so operators can
            // meter ad-hoc counts. Counts must be unaffected — CI diffs
            // this verb's output against a metrics-off run.
            if std::env::var("TNM_OBS").is_ok_and(|v| v == "1") {
                tnm_obs::set_enabled(true);
            }
            if args.has("explain") {
                println!(
                    "{}",
                    tnm_motifs::engine::explain_auto_select(&entry.graph, &cfg, rc.threads)
                );
            }
            let trace = args.get("trace");
            if trace.is_some() {
                // Collect spans for exactly this run: flip the flag on
                // and clear anything a previous phase left behind.
                tnm_obs::set_enabled(true);
                tnm_obs::drain_spans();
            }
            // One validation-and-dispatch path for every front end: the
            // same Query the serve daemon answers over the wire.
            let query = Query::Report { cfg, engine: rc.engine, threads: rc.threads };
            let QueryResponse::Report(report) = query.run(&entry.graph)? else {
                unreachable!("Report queries answer with Report responses")
            };
            print_report(&entry.spec.name, &report, timing, top);
            if let Some(path) = trace {
                let spans = tnm_obs::drain_spans();
                std::fs::write(path, tnm_obs::chrome_trace(&spans))
                    .map_err(|e| format!("cannot write trace file `{path}`: {e}"))?;
                tnm_obs::set_enabled(false);
                println!("wrote {} span(s) to {path} (Chrome-trace JSON)", spans.len());
            }
        }
        "count-batch" => {
            args.ensure_known(&allowed_flags(&common, &["spec", "all-3e-motifs", "dw", "top"]))?;
            let batch = batch_from(args)?;
            let rc = run_config_from(args)?;
            let corpus = corpus_from(args)?;
            let entry = corpus.entries.first().ok_or("count-batch requires --dataset NAME")?;
            // Validate through the Query path before planning, then let
            // the query execute the shared-traversal plan (results are
            // bit-identical to per-config `count` runs).
            let query =
                Query::Batch { cfgs: batch.clone(), engine: rc.engine, threads: rc.threads };
            query.validate()?;
            let plan = BatchPlanner::plan(&entry.graph, &batch, rc.engine, rc.threads);
            println!(
                "{}: {} configurations in {} shared traversal group(s) (engine {}):",
                entry.spec.name,
                batch.len(),
                plan.num_groups(),
                rc.engine
            );
            for line in plan.describe().lines() {
                println!("  [{line}]");
            }
            let QueryResponse::Batch(results) = query.run(&entry.graph)? else {
                unreachable!("Batch queries answer with Batch responses")
            };
            let top: usize = args.get_parsed("top", 3)?;
            for (i, (cfg, counts)) in batch.iter().zip(&results).enumerate() {
                print!(
                    "  #{i:<3} {}: {} instances across {} motif types",
                    batch_cfg_summary(cfg),
                    counts.total(),
                    counts.num_signatures()
                );
                let head: Vec<String> =
                    counts.top_k(top).into_iter().map(|(s, n)| format!("{s}:{n}")).collect();
                if head.is_empty() {
                    println!();
                } else {
                    println!("  [{}]", head.join(" "));
                }
            }
        }
        "serve" => {
            args.ensure_known(&["host", "port", "threads", "enumerate-cap", "http-port"])?;
            let host = args.get("host").unwrap_or("127.0.0.1");
            let port: u16 = args.get_parsed("port", 7878)?;
            let mut options = ServeOptions::default();
            options.max_threads = args.get_parsed("threads", options.max_threads)?;
            if options.max_threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            options.enumerate_cap = args.get_parsed("enumerate-cap", options.enumerate_cap)?;
            if args.has("http-port") {
                options.http_port = Some(args.get_parsed("http-port", 9090)?);
            }
            let server = MotifServer::bind_with((host, port), options)?;
            println!("tnm serve: listening on {}", server.local_addr());
            if let Some(http) = server.http_addr() {
                println!(
                    "tnm serve: scrape surface on http://{http} (/metrics /healthz /timeseries)"
                );
            }
            server.run()?;
        }
        "client" => {
            args.ensure_known(&allowed_flags(
                &common,
                &[
                    "addr",
                    "name",
                    "stats",
                    "metrics",
                    "slow-queries",
                    "shutdown",
                    "events",
                    "nodes",
                    "dc",
                    "dw",
                    "consecutive",
                    "induced",
                    "constrained",
                    "top",
                    "hold-out",
                    "append-batch",
                    "trace",
                    "profile",
                ],
            ))?;
            let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
            let mut client =
                ServeClient::connect_retry(addr, 40, std::time::Duration::from_millis(250))?;
            if args.has("shutdown") {
                client.shutdown()?;
                println!("tnm client: asked {addr} to shut down");
                return Ok(());
            }
            if args.has("metrics") {
                print!("{}", client.metrics()?.to_prometheus());
                return Ok(());
            }
            if args.has("stats") {
                let s = client.stats()?;
                println!(
                    "server at {addr}: {} queries, {} appended events, {} graph(s)",
                    s.queries,
                    s.appends,
                    s.graphs.len()
                );
                for g in &s.graphs {
                    println!(
                        "  {:<18} {:>9} events {:>8} nodes {:>3} subscription(s)",
                        g.name, g.events, g.nodes, g.subscriptions
                    );
                }
                return Ok(());
            }
            if args.has("slow-queries") {
                let s = client.stats()?;
                println!("server at {addr}: slowest {} of {} queries", s.slow.len(), s.queries);
                for e in &s.slow {
                    println!(
                        "  {:<10} {:<18} {:>12}  trace {}  {} span(s)",
                        e.kind,
                        e.graph,
                        format_ns(e.latency_ns),
                        if e.trace_id == 0 {
                            "-".to_string()
                        } else {
                            format!("{:016x}", e.trace_id)
                        },
                        e.spans.len()
                    );
                }
                println!("flight recorder ({} most recent):", s.flight.len());
                for e in &s.flight {
                    println!("  {:<10} {:<18} {:>12}", e.kind, e.graph, format_ns(e.latency_ns));
                }
                return Ok(());
            }
            let corpus = corpus_from(args)?;
            let entry = corpus
                .entries
                .first()
                .ok_or("client requires --dataset NAME (or --stats / --shutdown)")?;
            let cfg = count_cfg_from(args)?;
            let rc = run_config_from(args)?;
            let top: usize = args.get_parsed("top", 20)?;
            let timing = cfg.timing;
            let name = args.get("name").unwrap_or(&entry.spec.name);
            let all = entry.graph.events();
            let hold_out: usize = args.get_parsed("hold-out", 0)?;
            let hold_out = hold_out.min(all.len());
            let chunk: usize = args.get_parsed("append-batch", 512)?;
            if chunk == 0 {
                return Err("--append-batch must be at least 1".into());
            }
            let (base, tail) = all.split_at(all.len() - hold_out);
            let trace_path = args.get("trace");
            let wants_trace = trace_path.is_some() || args.has("profile");
            client.load_graph(name, base, entry.graph.num_nodes())?;
            if hold_out == 0 {
                // The very query `count` runs locally, answered by the
                // daemon — same validation, same dispatch, same report.
                let query = Query::Report { cfg, engine: rc.engine, threads: rc.threads };
                let response = if wants_trace {
                    let (response, trace) = client.query_traced(name, &query)?;
                    report_trace(&trace, trace_path, args.has("profile"))?;
                    response
                } else {
                    client.query(name, &query)?
                };
                let QueryResponse::Report(report) = response else {
                    return Err("server answered a Report query with the wrong shape".into());
                };
                print_report(name, &report, timing, top);
            } else {
                // Live path: subscribe, then stream the held-out tail
                // through incremental appends. The final counts are
                // bit-identical to counting the full graph from scratch.
                // Tracing covers the subscription's initial count.
                let (sub_id, mut live) = if wants_trace {
                    let (sub_id, live, trace) = client.subscribe_traced(name, &cfg)?;
                    report_trace(&trace, trace_path, args.has("profile"))?;
                    (sub_id, live)
                } else {
                    client.subscribe(name, &cfg)?
                };
                for batch in tail.chunks(chunk) {
                    let ack = client.append_events(name, batch)?;
                    if let Some((_, c)) =
                        ack.subscriptions.into_iter().find(|(id, _)| *id == sub_id)
                    {
                        live = c;
                    }
                }
                print_report(name, &EngineReport::from_exact("serve", live), timing, top);
            }
        }
        "top" => {
            args.ensure_known(&["addr", "interval", "iters"])?;
            let addr = args.get("addr").unwrap_or("127.0.0.1:9090");
            let interval: u64 = args.get_parsed("interval", 1000)?;
            let iters: usize = args.get_parsed("iters", 0)?;
            let mut frame = 0usize;
            loop {
                let body = http_get(addr, "/timeseries")?;
                let points = tnm_obs::parse_timeseries_json(&body)
                    .map_err(|e| format!("bad /timeseries payload from {addr}: {e}"))?;
                render_top(addr, &points);
                frame += 1;
                if iters != 0 && frame >= iters {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(interval.max(50)));
            }
        }
        "cycles" => {
            args.ensure_known(&["scale", "seed", "dataset", "dw", "max-len"])?;
            let corpus = corpus_from(args)?;
            let entry = corpus.entries.first().ok_or("cycles requires --dataset NAME")?;
            let dw: i64 = args.get_parsed("dw", 3600)?;
            let max_len: usize = args.get_parsed("max-len", 4)?;
            let counts = count_temporal_cycles(&entry.graph, &CycleConfig::new(max_len, dw));
            let mut lens: Vec<_> = counts.iter().collect();
            lens.sort();
            println!("{}: temporal cycles within dW={dw}s:", entry.spec.name);
            for (len, n) in lens {
                println!("  length {len}: {n}");
            }
        }
        "table2" => {
            args.ensure_known(&common)?;
            let t = experiments::table2::run(&corpus_from(args)?);
            if args.has("csv") {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.render());
            }
        }
        "table3" => {
            args.ensure_known(&allowed_flags(&common, &["full"]))?;
            let t = experiments::table3::run_with(&corpus_from(args)?, &run_config_from(args)?);
            if args.has("csv") {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.render());
                if args.has("full") {
                    println!();
                    print!("{}", t.render_full());
                }
            }
        }
        "table4" => {
            args.ensure_known(&allowed_flags(&common, &["full"]))?;
            let t = experiments::table4::run_with(&corpus_from(args)?, &run_config_from(args)?);
            if args.has("csv") {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.render());
                if args.has("full") {
                    println!();
                    print!("{}", t.render_full());
                }
            }
        }
        "table5" => {
            args.ensure_known(&common)?;
            let t = experiments::table5::run_with(&corpus_from(args)?, &run_config_from(args)?);
            if args.has("csv") {
                print!("{}", t.to_csv());
            } else {
                print!("{}", t.render());
            }
        }
        "fig1" => {
            args.ensure_known(&common)?;
            print!("{}", experiments::fig1::run().render());
        }
        "fig2" => {
            args.ensure_known(&common)?;
            print!("{}", experiments::fig2::run().render());
        }
        "fig3" => {
            args.ensure_known(&allowed_flags(&common, &["include-4e"]))?;
            let f = experiments::fig3::run_with(
                &corpus_from(args)?,
                args.has("include-4e"),
                &run_config_from(args)?,
            );
            if args.has("csv") {
                print!("{}", f.to_csv());
            } else {
                print!("{}", f.render());
            }
        }
        "fig4" => {
            args.ensure_known(&allowed_flags(&common, &["all"]))?;
            reject_sampling_engine(args, "fig4")?;
            let f = experiments::fig4::run(&corpus_from(args)?, args.has("all"));
            if args.has("csv") {
                print!("{}", f.to_csv());
            } else {
                print!("{}", f.render());
            }
        }
        "fig5" => {
            args.ensure_known(&allowed_flags(&common, &["all"]))?;
            reject_sampling_engine(args, "fig5")?;
            let f = experiments::fig5::run(&corpus_from(args)?, args.has("all"));
            if args.has("csv") {
                print!("{}", f.to_csv());
            } else {
                print!("{}", f.render());
            }
        }
        "fig6" => {
            args.ensure_known(&common)?;
            let f = experiments::fig6::run_with(&corpus_from(args)?, &run_config_from(args)?);
            if args.has("csv") {
                print!("{}", f.to_csv());
            } else {
                print!("{}", f.render());
            }
        }
        "all" => {
            args.ensure_known(&common)?;
            let corpus = corpus_from(args)?;
            let rc = run_config_from(args)?;
            print!("{}", experiments::table2::run(&corpus).render());
            println!();
            print!("{}", experiments::fig1::run().render());
            println!();
            print!("{}", experiments::fig2::run().render());
            println!();
            print!("{}", experiments::table3::run_with(&corpus, &rc).render());
            println!();
            print!("{}", experiments::table4::run_with(&corpus, &rc).render());
            println!();
            print!("{}", experiments::table5::run_with(&corpus, &rc).render());
            println!();
            print!("{}", experiments::fig3::run_with(&corpus, true, &rc).render());
            println!();
            print!("{}", experiments::fig4::run(&corpus, true).render());
            println!();
            print!("{}", experiments::fig5::run(&corpus, true).render());
            println!();
            print!("{}", experiments::fig6::run_with(&corpus, &rc).render());
        }
        other => {
            eprintln!("unknown command `{other}`\n");
            eprint!("{HELP}");
            return Err("unknown command".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnm_motifs::engine::{DEFAULT_SHARD_EVENTS, DEFAULT_WORKERS};

    fn rc(tokens: &[&str]) -> Result<RunConfig, Box<dyn std::error::Error>> {
        run_config_from(&Args::parse(tokens.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn engine_flags_parse() {
        assert_eq!(rc(&[]).unwrap().engine, EngineKind::Auto);
        assert_eq!(rc(&["--engine", "windowed"]).unwrap().engine, EngineKind::Windowed);
        assert_eq!(rc(&["--engine", "stream"]).unwrap().engine, EngineKind::Stream);
        assert_eq!(
            rc(&["--engine", "sharded"]).unwrap().engine,
            EngineKind::sharded(DEFAULT_SHARD_EVENTS, 0)
        );
        assert_eq!(
            rc(&["--engine", "sharded", "--shard-events", "512", "--max-resident-shards", "3"])
                .unwrap()
                .engine,
            EngineKind::sharded(512, 3)
        );
        assert_eq!(
            rc(&["--engine", "sampling", "--samples", "99", "--seed", "7"]).unwrap().engine,
            EngineKind::sampling(99, 7)
        );
        assert_eq!(
            rc(&["--engine", "distributed"]).unwrap().engine,
            EngineKind::distributed(DEFAULT_WORKERS, DEFAULT_SHARD_EVENTS)
        );
        assert_eq!(
            rc(&["--engine", "distributed", "--workers", "4", "--shard-events", "512"])
                .unwrap()
                .engine,
            EngineKind::distributed(4, 512)
        );
        assert_eq!(rc(&["--threads", "3"]).unwrap().threads, 3);
    }

    /// Nonsensical flag/engine combinations must fail loudly, naming the
    /// offending engine — not silently run an exact count.
    #[test]
    fn nonsensical_combos_rejected() {
        for exact in ["backtrack", "windowed", "parallel", "stream", "sharded", "distributed"] {
            let err = rc(&["--engine", exact, "--samples", "10"]).unwrap_err().to_string();
            assert!(
                err.contains("--engine sampling") && err.contains(exact),
                "engine {exact}: unhelpful error `{err}`"
            );
        }
        for flag in ["--shard-events", "--max-resident-shards"] {
            let err = rc(&["--engine", "windowed", flag, "4"]).unwrap_err().to_string();
            assert!(
                err.contains("--engine sharded") && err.contains("windowed"),
                "flag {flag}: unhelpful error `{err}`"
            );
            // ...including when no engine was requested at all (auto).
            let err = rc(&[flag, "4"]).unwrap_err().to_string();
            assert!(err.contains("--engine sharded"), "flag {flag}: unhelpful error `{err}`");
        }
        // --workers belongs to the distributed engine alone, and the
        // distributed engine never takes a resident-shard budget.
        let err = rc(&["--engine", "windowed", "--workers", "2"]).unwrap_err().to_string();
        assert!(err.contains("--engine distributed") && err.contains("windowed"), "{err}");
        let err = rc(&["--workers", "2"]).unwrap_err().to_string();
        assert!(err.contains("--engine distributed"), "{err}");
        let err =
            rc(&["--engine", "distributed", "--max-resident-shards", "2"]).unwrap_err().to_string();
        assert!(err.contains("--engine sharded") && err.contains("distributed"), "{err}");
        assert!(rc(&["--engine", "sampling", "--samples", "0"]).is_err());
        assert!(rc(&["--engine", "sharded", "--shard-events", "0"]).is_err());
        assert!(rc(&["--engine", "distributed", "--workers", "0"]).is_err());
        assert!(rc(&["--engine", "distributed", "--shard-events", "0"]).is_err());
        assert!(rc(&["--engine", "bogus"]).unwrap_err().to_string().contains("distributed"));
    }

    fn batch(tokens: &[&str]) -> Result<Vec<EnumConfig>, Box<dyn std::error::Error>> {
        batch_from(&Args::parse(tokens.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn count_batch_spec_parses() {
        let text = "# full-spectrum sweep\n\
                    events=3 nodes=3 dw=3000\n\
                    sig=010102 dc=10 dw=40 consecutive   # targeted\n\
                    \n\
                    events=2 nodes=3 min-nodes=3 dc=5 induced constrained\n";
        let batch = parse_batch_spec(text).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].timing, Timing::only_w(3000));
        assert_eq!(batch[1].signature_filter, Some(sig("010102")));
        assert_eq!(batch[1].timing, Timing::both(10, 40));
        assert!(batch[1].consecutive_events);
        assert_eq!(batch[2].min_nodes, 3);
        assert!(batch[2].static_induced && batch[2].constrained_dynamic);
    }

    /// `count-batch` input validation: empty batches, malformed spec
    /// lines, and flag combinations must fail loudly with the offending
    /// piece named — per the existing `count` conventions.
    #[test]
    fn count_batch_validation() {
        // Empty batch (comments/blank lines only) is an error, not a no-op.
        let err = parse_batch_spec("# nothing\n\n").unwrap_err().to_string();
        assert!(err.contains("no configurations"), "{err}");
        // Unknown tokens, missing timing, bad bounds — with line numbers.
        let err = parse_batch_spec("events=3 dw=10\nbogus=1 dw=10").unwrap_err().to_string();
        assert!(err.contains("line 2") && err.contains("bogus"), "{err}");
        let err = parse_batch_spec("events=3 nodes=3").unwrap_err().to_string();
        assert!(err.contains("dc=") && err.contains("dw="), "{err}");
        assert!(parse_batch_spec("events=3 dw=0").is_err());
        assert!(parse_batch_spec("events=3 dw=10 min-nodes=9").is_err());
        // sig= fixes the shape; a conflicting events=/nodes= is an error.
        let err = parse_batch_spec("sig=010102 events=2 dw=10").unwrap_err().to_string();
        assert!(err.contains("implies events=3"), "{err}");
        // Exactly one batch source.
        let err = batch(&["--spec", "x.spec", "--all-3e-motifs"]).unwrap_err().to_string();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = batch(&[]).unwrap_err().to_string();
        assert!(err.contains("--spec") && err.contains("--all-3e-motifs"), "{err}");
        // --dw belongs to --all-3e-motifs; spec lines carry their own.
        let err = batch(&["--spec", "x.spec", "--dw", "10"]).unwrap_err().to_string();
        assert!(err.contains("dw="), "{err}");
        assert!(batch(&["--all-3e-motifs", "--dw", "0"]).is_err());
        // The canonical batch: 36 three-event motifs, shared window.
        let b = batch(&["--all-3e-motifs"]).unwrap();
        assert_eq!(b.len(), 36);
        assert!(b.iter().all(|c| c.timing == Timing::only_w(3000) && c.signature_filter.is_some()));
    }
}
