//! Minimal argument parsing (no external dependencies).
//!
//! Supports `--flag`, `--key value`, and positional arguments. Unknown
//! flags are reported with the list of valid ones.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Errors from argument parsing or lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--key` flag was not followed by a value.
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value.
        value: String,
    },
    /// An unrecognized flag was supplied.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "flag --{k} needs a value"),
            ArgError::BadValue { flag, value } => {
                write!(f, "invalid value `{value}` for --{flag}")
            }
            ArgError::Unknown(k) => write!(f, "unknown flag --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Flags that never take a value.
const BOOLEAN_FLAGS: &[&str] = &[
    "full",
    "all",
    "csv",
    "consecutive",
    "induced",
    "constrained",
    "include-4e",
    "all-3e-motifs",
    "shutdown",
    "stats",
    "metrics",
    "slow-queries",
    "profile",
    "explain",
    "help",
];

impl Args {
    /// Parses raw arguments (excluding the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let name = name.to_string();
                if BOOLEAN_FLAGS.contains(&name.as_str()) {
                    out.flags.insert(name, "true".to_string());
                } else {
                    let value = iter.next().ok_or_else(|| ArgError::MissingValue(name.clone()))?;
                    out.flags.insert(name, value);
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// True if a boolean flag is present.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// String flag value.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Typed flag value with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| ArgError::BadValue { flag: flag.to_string(), value: v.clone() }),
        }
    }

    /// Rejects flags outside the allowed set (boolean and valued alike).
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::Unknown(k.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn mixed_args() {
        let a = parse(&["--seed", "7", "pos0", "--csv", "--scale", "0.5"]);
        assert_eq!(a.positional(0), Some("pos0"));
        assert!(a.has("csv"));
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get_parsed::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.get_parsed::<f64>("scale", 1.0).unwrap(), 0.5);
        assert_eq!(a.get_parsed::<u64>("missing", 42).unwrap(), 42);
    }

    #[test]
    fn missing_value_error() {
        let err = Args::parse(vec!["--seed".to_string()]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("seed".to_string()));
    }

    #[test]
    fn bad_value_error() {
        let a = parse(&["--seed", "xyz"]);
        assert!(matches!(a.get_parsed::<u64>("seed", 0), Err(ArgError::BadValue { .. })));
    }

    #[test]
    fn unknown_flag_rejected() {
        let a = parse(&["--bogus", "1"]);
        assert_eq!(a.ensure_known(&["seed"]), Err(ArgError::Unknown("bogus".to_string())));
        let b = parse(&["--seed", "1"]);
        assert!(b.ensure_known(&["seed"]).is_ok());
    }
}
