//! # tnm-obs — zero-overhead-when-off instrumentation runtime
//!
//! A dependency-free observability layer shared by every crate in the
//! workspace: named atomic **counters**, peak-tracking **gauges**, and
//! log-bucketed **histograms** in a [`Registry`] ([`registry`]), plus
//! hierarchical timed **spans** collected per thread and exportable as
//! Chrome-trace JSON ([`span`], the [`span!`] macro).
//!
//! Everything hot is gated behind one process-global flag read with a
//! relaxed atomic load ([`enabled`]); when the flag is off the
//! fast-path cost of an instrumentation site is a single branch. The
//! `obs_overhead` bench group in `tnm-bench` pins that claim.
//!
//! Two usage tiers:
//!
//! * **Global, gated** — free functions ([`counter_add`], [`gauge_set`],
//!   [`histogram_record_ns`], [`span!`]) record into the process-wide
//!   [`global`] registry *only when [`enabled`] is on*. Engine internals
//!   use these (or capture the flag once and flush local tallies).
//! * **Instance, ungated** — a [`Registry`] owned by a component (the
//!   `tnm serve` daemon keeps one per server) records unconditionally;
//!   its call sites are per-request, not per-event, so the flag is not
//!   consulted.
//!
//! ```
//! let _guard = tnm_obs::test_guard();
//! tnm_obs::set_enabled(true);
//! tnm_obs::drain_spans();
//! {
//!     let _outer = tnm_obs::span!("walk.shard", shard = 3);
//!     tnm_obs::counter_add("engine.instances_emitted", 7);
//! }
//! let spans = tnm_obs::drain_spans();
//! assert_eq!(spans[0].name, "walk.shard");
//! tnm_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod registry;
pub mod span;
pub mod timeseries;

pub use registry::{
    bucket_index, bucket_upper_bound, Counter, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot,
    Registry, Snapshot, HISTOGRAM_BUCKETS,
};
pub use span::{
    chrome_trace, current_trace, drain_spans, inject_spans, now_ns, record_span, set_trace,
    take_trace_spans, Span, SpanRecord, TraceCtx,
};
pub use timeseries::{parse_timeseries_json, TimePoint, TimeSeries};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is collecting. One relaxed load — this is
/// the whole cost of a disabled instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry backing the gated free functions.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Adds `n` to the global counter `name` (no-op while disabled).
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if enabled() {
        global().counter(name).add(n);
    }
}

/// Sets the global gauge `name` (tracking its peak; no-op while
/// disabled).
#[inline]
pub fn gauge_set(name: &str, value: u64) {
    if enabled() {
        global().gauge(name).set(value);
    }
}

/// Adds `n` to the global gauge `name` (no-op while disabled).
#[inline]
pub fn gauge_add(name: &str, n: u64) {
    if enabled() {
        global().gauge(name).add(n);
    }
}

/// Subtracts `n` from the global gauge `name` (no-op while disabled).
#[inline]
pub fn gauge_sub(name: &str, n: u64) {
    if enabled() {
        global().gauge(name).sub(n);
    }
}

/// Records a nanosecond observation into the global histogram `name`
/// (no-op while disabled).
#[inline]
pub fn histogram_record_ns(name: &str, ns: u64) {
    if enabled() {
        global().histogram(name).record(ns);
    }
}

/// Serializes tests that mutate global obs state (the enabled flag,
/// the global registry, the span collector). Tests across the
/// workspace take this guard so `cargo test`'s in-process parallelism
/// cannot interleave their observations.
#[doc(hidden)]
pub fn test_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_free_functions_do_not_record() {
        let _guard = test_guard();
        set_enabled(false);
        global().reset();
        counter_add("t.counter", 5);
        gauge_set("t.gauge", 5);
        histogram_record_ns("t.hist", 5);
        let snap = global().snapshot();
        assert_eq!(snap.counters.get("t.counter"), None);
        assert_eq!(snap.gauges.get("t.gauge"), None);
        assert_eq!(snap.histograms.get("t.hist"), None);
    }

    #[test]
    fn enabled_free_functions_reach_the_global_registry() {
        let _guard = test_guard();
        set_enabled(true);
        global().reset();
        counter_add("t.counter", 5);
        counter_add("t.counter", 2);
        gauge_add("t.gauge", 9);
        gauge_sub("t.gauge", 4);
        histogram_record_ns("t.hist", 1024);
        let snap = global().snapshot();
        set_enabled(false);
        assert_eq!(snap.counters["t.counter"], 7);
        assert_eq!(snap.gauges["t.gauge"].value, 5);
        assert_eq!(snap.gauges["t.gauge"].peak, 9);
        assert_eq!(snap.histograms["t.hist"].count, 1);
        assert_eq!(snap.histograms["t.hist"].sum, 1024);
    }
}
