//! Windowed metric time series: a fixed-capacity ring of periodic
//! [`Snapshot`] deltas.
//!
//! The registry is cumulative — perfect for Prometheus scrapes, useless
//! for "what is the QPS *right now*". [`TimeSeries::record`] takes a
//! fresh snapshot plus a wall-clock stamp, diffs it against the
//! previous sample ([`Snapshot::delta`]), and keeps the last `cap`
//! windows: counters become per-window flows (rates after dividing by
//! the interval), gauges stay levels, histograms carry only the
//! window's observations (so [`HistogramSnapshot::percentile`] yields
//! p50/p99 *over the window*).
//!
//! [`TimeSeries::to_json`] renders the ring for the serve HTTP
//! `/timeseries` endpoint, and [`parse_timeseries_json`] reads it back
//! — `tnm top` polls exactly this pair, so the round-trip is pinned by
//! test rather than by an external JSON dependency.

use crate::registry::{GaugeSnapshot, HistogramSnapshot, Snapshot};
use std::collections::VecDeque;

/// One sampled window: what happened between this sample and the
/// previous one, stamped with the sample time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimePoint {
    /// Sample wall-clock time, milliseconds since the Unix epoch.
    pub at_unix_ms: u64,
    /// Window length in milliseconds (time since the previous sample;
    /// 0 for the first sample, whose flows are since process start).
    pub interval_ms: u64,
    /// The window's metric deltas: counter flows, gauge levels,
    /// histogram window observations.
    pub delta: Snapshot,
}

/// A bounded ring of [`TimePoint`]s; see the [module docs](self).
#[derive(Debug)]
pub struct TimeSeries {
    cap: usize,
    last: Option<(u64, Snapshot)>,
    points: VecDeque<TimePoint>,
}

impl TimeSeries {
    /// An empty series retaining at most `cap` windows (min 1).
    pub fn new(cap: usize) -> TimeSeries {
        TimeSeries { cap: cap.max(1), last: None, points: VecDeque::new() }
    }

    /// Ingests a cumulative snapshot taken at `at_unix_ms`, storing the
    /// delta window against the previous sample and evicting the
    /// oldest window beyond capacity.
    pub fn record(&mut self, at_unix_ms: u64, snap: Snapshot) {
        let (interval_ms, delta) = match &self.last {
            Some((prev_ms, prev)) => (at_unix_ms.saturating_sub(*prev_ms), snap.delta(prev)),
            None => (0, snap.clone()),
        };
        self.last = Some((at_unix_ms, snap));
        if self.points.len() == self.cap {
            self.points.pop_front();
        }
        self.points.push_back(TimePoint { at_unix_ms, interval_ms, delta });
    }

    /// The retained windows, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &TimePoint> {
        self.points.iter()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders the ring as JSON:
    /// `{"points":[{"at_ms":…,"interval_ms":…,"counters":{…},
    /// "gauges":{"name":{"value":…,"peak":…}},
    /// "histograms":{"name":{"count":…,"sum":…,"buckets":[[i,n],…]}}},…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at_ms\":{},\"interval_ms\":{},\"counters\":{{",
                p.at_unix_ms, p.interval_ms
            ));
            push_entries(&mut out, p.delta.counters.iter(), |out, v| {
                out.push_str(&v.to_string());
            });
            out.push_str("},\"gauges\":{");
            push_entries(&mut out, p.delta.gauges.iter(), |out, g| {
                out.push_str(&format!("{{\"value\":{},\"peak\":{}}}", g.value, g.peak));
            });
            out.push_str("},\"histograms\":{");
            push_entries(&mut out, p.delta.histograms.iter(), |out, h| {
                out.push_str(&format!("{{\"count\":{},\"sum\":{},\"buckets\":[", h.count, h.sum));
                for (j, (b, n)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{b},{n}]"));
                }
                out.push_str("]}");
            });
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut render: impl FnMut(&mut String, &V),
) {
    for (i, (name, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        crate::span::escape_json(name, out);
        out.push_str("\":");
        render(out, v);
    }
}

// ---------------------------------------------------------------------
// A minimal JSON reader for the subset `to_json` emits. The workspace
// is dependency-free by construction (vendored stubs only), so `tnm
// top` parses the `/timeseries` payload through this instead of serde.

/// Parses [`TimeSeries::to_json`] output back into points. Tolerates
/// whitespace and unknown keys (skipped structurally) so the format can
/// grow; returns a descriptive error for malformed input.
pub fn parse_timeseries_json(text: &str) -> Result<Vec<TimePoint>, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let mut points = Vec::new();
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        if key == "points" {
            p.expect(b'[')?;
            if !p.try_expect(b']') {
                loop {
                    points.push(p.point()?);
                    if !p.try_expect(b',') {
                        p.expect(b']')?;
                        break;
                    }
                }
            }
        } else {
            p.skip_value()?;
        }
        if !p.try_expect(b',') {
            break;
        }
    }
    p.expect(b'}')?;
    Ok(points)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.try_expect(b) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn try_expect(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched:
                    // advance one char, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    /// Skips any well-formed JSON value (for unknown keys).
    fn skip_value(&mut self) -> Result<(), String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'"' => {
                self.string()?;
            }
            b'{' => {
                self.pos += 1;
                if !self.try_expect(b'}') {
                    loop {
                        self.string()?;
                        self.expect(b':')?;
                        self.skip_value()?;
                        if !self.try_expect(b',') {
                            self.expect(b'}')?;
                            break;
                        }
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                if !self.try_expect(b']') {
                    loop {
                        self.skip_value()?;
                        if !self.try_expect(b',') {
                            self.expect(b']')?;
                            break;
                        }
                    }
                }
            }
            b't' | b'f' | b'n' => {
                while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_alphabetic()) {
                    self.pos += 1;
                }
            }
            _ => {
                // Number (possibly signed/fractional — skipped, the
                // emitter only writes u64s we care about).
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.pos += 1;
                }
                if start == self.pos {
                    return Err(format!("unexpected byte at {}", self.pos));
                }
            }
        }
        Ok(())
    }

    fn point(&mut self) -> Result<TimePoint, String> {
        let mut point = TimePoint::default();
        self.expect(b'{')?;
        if self.try_expect(b'}') {
            return Ok(point);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "at_ms" => point.at_unix_ms = self.u64()?,
                "interval_ms" => point.interval_ms = self.u64()?,
                "counters" => {
                    self.object(
                        |p, name, point| {
                            let v = p.u64()?;
                            point.delta.counters.insert(name, v);
                            Ok(())
                        },
                        &mut point,
                    )?;
                }
                "gauges" => {
                    self.object(
                        |p, name, point| {
                            let mut g = GaugeSnapshot::default();
                            p.expect(b'{')?;
                            loop {
                                let k = p.string()?;
                                p.expect(b':')?;
                                let v = p.u64()?;
                                match k.as_str() {
                                    "value" => g.value = v,
                                    "peak" => g.peak = v,
                                    other => return Err(format!("unknown gauge field `{other}`")),
                                }
                                if !p.try_expect(b',') {
                                    p.expect(b'}')?;
                                    break;
                                }
                            }
                            point.delta.gauges.insert(name, g);
                            Ok(())
                        },
                        &mut point,
                    )?;
                }
                "histograms" => {
                    self.object(
                        |p, name, point| {
                            let mut h = HistogramSnapshot::default();
                            p.expect(b'{')?;
                            loop {
                                let k = p.string()?;
                                p.expect(b':')?;
                                match k.as_str() {
                                    "count" => h.count = p.u64()?,
                                    "sum" => h.sum = p.u64()?,
                                    "buckets" => {
                                        p.expect(b'[')?;
                                        if !p.try_expect(b']') {
                                            loop {
                                                p.expect(b'[')?;
                                                let i = p.u64()?;
                                                p.expect(b',')?;
                                                let n = p.u64()?;
                                                p.expect(b']')?;
                                                let i = u8::try_from(i)
                                                    .map_err(|_| "bucket index out of range")?;
                                                h.buckets.push((i, n));
                                                if !p.try_expect(b',') {
                                                    p.expect(b']')?;
                                                    break;
                                                }
                                            }
                                        }
                                    }
                                    other => {
                                        return Err(format!("unknown histogram field `{other}`"))
                                    }
                                }
                                if !p.try_expect(b',') {
                                    p.expect(b'}')?;
                                    break;
                                }
                            }
                            point.delta.histograms.insert(name, h);
                            Ok(())
                        },
                        &mut point,
                    )?;
                }
                _ => self.skip_value()?,
            }
            if !self.try_expect(b',') {
                self.expect(b'}')?;
                return Ok(point);
            }
        }
    }

    /// Parses `{"name": <value>, …}` with `f` consuming each value.
    fn object(
        &mut self,
        mut f: impl FnMut(&mut Parser<'a>, String, &mut TimePoint) -> Result<(), String>,
        point: &mut TimePoint,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        if self.try_expect(b'}') {
            return Ok(());
        }
        loop {
            let name = self.string()?;
            self.expect(b':')?;
            f(self, name, point)?;
            if !self.try_expect(b',') {
                return self.expect(b'}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn ring_keeps_the_last_cap_windows_of_deltas() {
        let r = Registry::new();
        let mut ts = TimeSeries::new(2);
        r.counter("q").add(10);
        ts.record(1_000, r.snapshot());
        r.counter("q").add(5);
        r.gauge("level").set(3);
        ts.record(2_000, r.snapshot());
        r.counter("q").add(7);
        r.histogram("lat").record(100);
        ts.record(3_500, r.snapshot());
        assert_eq!(ts.len(), 2, "capacity 2 evicts the first window");
        let points: Vec<_> = ts.points().collect();
        assert_eq!(points[0].at_unix_ms, 2_000);
        assert_eq!(points[0].interval_ms, 1_000);
        assert_eq!(points[0].delta.counters["q"], 5);
        assert_eq!(points[1].interval_ms, 1_500);
        assert_eq!(points[1].delta.counters["q"], 7);
        assert_eq!(points[1].delta.gauges["level"].value, 3, "levels pass through");
        assert_eq!(points[1].delta.histograms["lat"].count, 1);
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = Registry::new();
        let mut ts = TimeSeries::new(8);
        r.counter("serve.queries").add(3);
        r.gauge("shard.resident_events").set(42);
        let h = r.histogram("serve.query.report_ns");
        h.record(1_000);
        h.record(2_000_000);
        ts.record(1_700_000_000_123, r.snapshot());
        r.counter("serve.queries").add(9);
        h.record(3);
        ts.record(1_700_000_001_123, r.snapshot());
        let json = ts.to_json();
        let parsed = parse_timeseries_json(&json).expect("emitted JSON parses");
        let expected: Vec<TimePoint> = ts.points().cloned().collect();
        assert_eq!(parsed, expected);
    }

    #[test]
    fn empty_series_round_trips() {
        let ts = TimeSeries::new(4);
        assert_eq!(ts.to_json(), "{\"points\":[]}");
        assert_eq!(parse_timeseries_json(&ts.to_json()).unwrap(), Vec::new());
    }

    #[test]
    fn parser_tolerates_unknown_keys_and_rejects_garbage() {
        let json = "{\"version\":7,\"points\":[{\"at_ms\":5,\"interval_ms\":2,\
                     \"future\":[1,{\"x\":null}],\"counters\":{\"a\":1},\
                     \"gauges\":{},\"histograms\":{}}]}";
        let points = parse_timeseries_json(json).expect("unknown keys are skipped");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].at_unix_ms, 5);
        assert_eq!(points[0].delta.counters["a"], 1);
        for bad in [
            "",
            "{",
            "{\"points\":",
            "{\"points\":[{]}",
            "{\"points\":[{\"at_ms\":\"x\"}]}",
            "{\"points\":[{\"histograms\":{\"h\":{\"buckets\":[[500,1]]}}}]}",
        ] {
            assert!(parse_timeseries_json(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
