//! Hierarchical timed spans with Chrome-trace export.
//!
//! A [`Span`] is an RAII guard: [`Span::start`] (usually via the
//! [`span!`](crate::span!) macro) stamps a start time and the calling
//! thread's current nesting depth; dropping it records a completed
//! [`SpanRecord`] into the process-global collector. While
//! [`enabled`](crate::enabled) is off, `Span::start` returns an inert
//! guard after one branch — no clock read, no allocation.
//!
//! Spans are meant for *coarse* phases (plan/spill/spawn/walk/merge,
//! one per shard or query) — per-event costs belong in counters. The
//! collector is therefore a single mutex-guarded vector; records land
//! in completion order, and nesting is recoverable from
//! `(tid, start_ns, dur_ns, depth)`.
//!
//! [`chrome_trace`] renders records as Chrome-trace JSON (the
//! `chrome://tracing` / Perfetto `traceEvents` format) — the payload
//! behind the CLI's `--trace FILE` flag.

use std::cell::Cell;
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A completed span observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, dot-separated by convention (`"distributed.spill"`).
    pub name: String,
    /// Key/value annotations, in declaration order.
    pub args: Vec<(String, String)>,
    /// Start offset in nanoseconds from the process obs epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small dense per-thread id (assigned on each thread's first span).
    pub tid: u64,
    /// Nesting depth on its thread at start time (0 = top level).
    pub depth: u32,
    /// Trace this span belongs to (0 = no request-scoped trace).
    pub trace_id: u64,
    /// Process-unique span id (never 0 for a recorded span).
    pub span_id: u64,
    /// `span_id` of the enclosing span (0 = root of its trace/thread).
    pub parent_id: u64,
}

/// Request-scoped trace identity: a trace id plus the span the next
/// recorded root should attach under. Flows from `tnm serve` through
/// `Query::run` into distributed worker processes (as an optional
/// section of the job frame), so one served query stitches into a
/// single cross-process span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Nonzero trace identifier shared by every span of the request.
    pub trace_id: u64,
    /// Span id new thread-root spans attach under (0 = none).
    pub parent_span: u64,
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

impl TraceCtx {
    /// Mints a fresh trace context (nonzero id, no parent yet). Ids mix
    /// a process counter with the obs clock so traces from different
    /// processes are unlikely to collide.
    pub fn new() -> TraceCtx {
        let seq = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
        let mut id = (seq << 20) ^ now_ns() ^ (std::process::id() as u64).rotate_left(40);
        if id == 0 {
            id = 1;
        }
        TraceCtx { trace_id: id, parent_span: 0 }
    }
}

impl Default for TraceCtx {
    fn default() -> Self {
        TraceCtx::new()
    }
}

// The active trace, as two relaxed atomics (trace id 0 = none). A
// process-global rather than a thread-local: walker/worker threads
// spawned mid-query must inherit it. Concurrent traced queries in one
// process are therefore best-effort — spans are filtered by trace id
// after draining, so an overlap loses spans rather than corrupting a
// tree.
static TRACE_ID: AtomicU64 = AtomicU64::new(0);
static TRACE_PARENT: AtomicU64 = AtomicU64::new(0);

/// Installs (or clears, with `None`) the process-global active trace.
pub fn set_trace(ctx: Option<TraceCtx>) {
    let ctx = ctx.unwrap_or(TraceCtx { trace_id: 0, parent_span: 0 });
    TRACE_ID.store(ctx.trace_id, Ordering::Relaxed);
    TRACE_PARENT.store(ctx.parent_span, Ordering::Relaxed);
}

/// The active trace installed by [`set_trace`], if any.
pub fn current_trace() -> Option<TraceCtx> {
    let trace_id = TRACE_ID.load(Ordering::Relaxed);
    (trace_id != 0)
        .then(|| TraceCtx { trace_id, parent_span: TRACE_PARENT.load(Ordering::Relaxed) })
}

/// Whether spans should be collected: either instrumentation is on
/// globally or a request-scoped trace is active. Two relaxed loads on
/// the off path.
#[inline]
pub(crate) fn spans_active() -> bool {
    crate::enabled() || TRACE_ID.load(Ordering::Relaxed) != 0
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process obs epoch (first observation).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
}

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The parent a new span on this thread attaches under: the innermost
/// open span, else the active trace's attach point (so spans on worker
/// threads spawned mid-query still join the request tree).
fn inherited_parent() -> u64 {
    let local = CURRENT_PARENT.with(|p| p.get());
    if local != 0 {
        local
    } else {
        TRACE_PARENT.load(Ordering::Relaxed)
    }
}

fn thread_id() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static SPANS: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

fn push(record: SpanRecord) {
    collector().lock().unwrap_or_else(|p| p.into_inner()).push(record);
}

/// Takes (and clears) every span recorded so far, in completion order.
pub fn drain_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *collector().lock().unwrap_or_else(|p| p.into_inner()))
}

/// Removes and returns exactly the spans belonging to `trace_id`,
/// leaving every other record (globally-enabled instrumentation,
/// concurrent traces) in the collector.
pub fn take_trace_spans(trace_id: u64) -> Vec<SpanRecord> {
    let mut guard = collector().lock().unwrap_or_else(|p| p.into_inner());
    let mut taken = Vec::new();
    guard.retain(|s| {
        if s.trace_id == trace_id {
            taken.push(s.clone());
            false
        } else {
            true
        }
    });
    taken
}

/// Appends externally captured spans (a worker's shipped trace) to the
/// collector, re-minting their ids in this process's id space: span ids
/// found *within* `spans` get fresh ids (and internal parent links
/// follow), parents pointing outside the set are rewired to
/// `attach_parent`, thread ids are re-minted per distinct incoming tid,
/// and every start is shifted by `offset_ns` (the coordinator-clock
/// time the remote capture began).
pub fn inject_spans(spans: Vec<SpanRecord>, attach_parent: u64, offset_ns: u64) {
    use std::collections::HashMap;
    let mut id_map: HashMap<u64, u64> = HashMap::with_capacity(spans.len());
    for s in &spans {
        id_map.entry(s.span_id).or_insert_with(next_span_id);
    }
    let mut tid_map: HashMap<u64, u64> = HashMap::new();
    let mut guard = collector().lock().unwrap_or_else(|p| p.into_inner());
    for mut s in spans {
        s.span_id = id_map[&s.span_id];
        s.parent_id = match id_map.get(&s.parent_id) {
            Some(&mapped) if s.parent_id != 0 => mapped,
            _ => attach_parent,
        };
        s.tid = *tid_map.entry(s.tid).or_insert_with(|| NEXT_TID.fetch_add(1, Ordering::Relaxed));
        s.start_ns = s.start_ns.saturating_add(offset_ns);
        guard.push(s);
    }
}

/// Records a span that was measured externally (e.g. a worker-reported
/// wall time the coordinator re-emits): it ends now and lasted
/// `dur_ns`. No-op while disabled and no trace is active.
pub fn record_span(name: &str, dur_ns: u64, args: &[(&str, String)]) {
    if !spans_active() {
        return;
    }
    let end = now_ns();
    push(SpanRecord {
        name: name.to_string(),
        args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        start_ns: end.saturating_sub(dur_ns),
        dur_ns,
        tid: thread_id(),
        depth: DEPTH.with(|d| d.get()),
        trace_id: TRACE_ID.load(Ordering::Relaxed),
        span_id: next_span_id(),
        parent_id: inherited_parent(),
    });
}

/// An RAII span guard; see the [module docs](self).
#[must_use = "a span measures until dropped — bind it with `let _span = …`"]
pub struct Span {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    args: Vec<(String, String)>,
    start_ns: u64,
    depth: u32,
    span_id: u64,
    parent_id: u64,
    prev_parent: u64,
    trace_id: u64,
}

impl Span {
    /// Starts a span (inert when disabled and untraced — two relaxed
    /// loads, nothing else).
    pub fn start(name: &'static str) -> Span {
        if !spans_active() {
            return Span { inner: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        let span_id = next_span_id();
        let prev_parent = CURRENT_PARENT.with(|p| {
            let prev = p.get();
            p.set(span_id);
            prev
        });
        let parent_id =
            if prev_parent != 0 { prev_parent } else { TRACE_PARENT.load(Ordering::Relaxed) };
        Span {
            inner: Some(ActiveSpan {
                name,
                args: Vec::new(),
                start_ns: now_ns(),
                depth,
                span_id,
                parent_id,
                prev_parent,
                trace_id: TRACE_ID.load(Ordering::Relaxed),
            }),
        }
    }

    /// Attaches a key/value annotation (formatted only when live).
    pub fn arg(mut self, key: &str, value: impl Display) -> Span {
        if let Some(active) = &mut self.inner {
            active.args.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// This span's process-unique id (0 when the guard is inert), for
    /// threading into a [`TraceCtx`] so downstream work attaches here.
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |a| a.span_id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            // Restore the enclosing *local* span as the thread's parent
            // (the recorded parent_id may instead be the trace attach
            // point when this span was a thread root).
            CURRENT_PARENT.with(|p| p.set(active.prev_parent));
            push(SpanRecord {
                name: active.name.to_string(),
                args: active.args,
                start_ns: active.start_ns,
                dur_ns: now_ns().saturating_sub(active.start_ns),
                tid: thread_id(),
                depth: active.depth,
                trace_id: active.trace_id,
                span_id: active.span_id,
                parent_id: active.parent_id,
            });
        }
    }
}

/// Starts a [`Span`] guard: `span!("walk.shard")` or
/// `span!("walk.shard", shard = 3, events = n)`. Bind the result —
/// the span measures until the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::start($name)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::span::Span::start($name)$(.arg(stringify!($key), &$val))+
    };
}

pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders records as Chrome-trace JSON: complete (`"ph":"X"`) events
/// with microsecond timestamps, one `tid` per recording thread, span
/// args under `"args"`. Load the output in `chrome://tracing` or
/// Perfetto.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&s.name, &mut out);
        out.push_str("\",\"cat\":\"tnm\",\"ph\":\"X\"");
        out.push_str(&format!(
            ",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{}",
            s.start_ns / 1000,
            s.start_ns % 1000,
            s.dur_ns / 1000,
            s.dur_ns % 1000,
            s.tid
        ));
        out.push_str(",\"args\":{");
        for (k, v) in &s.args {
            out.push('"');
            escape_json(k, &mut out);
            out.push_str("\":\"");
            escape_json(v, &mut out);
            out.push_str("\",");
        }
        if s.trace_id != 0 {
            out.push_str(&format!(
                "\"trace\":\"{:016x}\",\"span\":\"{}\",\"parent\":\"{}\",",
                s.trace_id, s.span_id, s.parent_id
            ));
        }
        out.push_str(&format!("\"depth\":\"{}\"}}}}", s.depth));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_enabled, test_guard};

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_guard();
        set_enabled(false);
        drain_spans();
        {
            let _s = crate::span!("quiet", k = 1);
        }
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn nested_spans_carry_depth_and_contain_children() {
        let _guard = test_guard();
        set_enabled(true);
        drain_spans();
        {
            let _outer = crate::span!("outer", job = 7);
            {
                let _inner = crate::span!("inner");
            }
        }
        let spans = drain_spans();
        set_enabled(false);
        assert_eq!(spans.len(), 2);
        let inner = &spans[0]; // completion order: inner drops first
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(outer.args, vec![("job".to_string(), "7".to_string())]);
    }

    #[test]
    fn sibling_threads_get_distinct_tids() {
        let _guard = test_guard();
        set_enabled(true);
        drain_spans();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = crate::span!("worker", idx = i);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let spans = drain_spans();
        set_enabled(false);
        assert_eq!(spans.len(), 4);
        let mut tids: Vec<_> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "each thread has its own tid");
    }

    #[test]
    fn synthetic_spans_end_now() {
        let _guard = test_guard();
        set_enabled(true);
        drain_spans();
        record_span("distributed.walk", 1_000_000, &[("shard", "3".to_string())]);
        let spans = drain_spans();
        set_enabled(false);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].dur_ns, 1_000_000);
        assert_eq!(spans[0].args[0], ("shard".to_string(), "3".to_string()));
        assert!(spans[0].start_ns <= now_ns(), "start is clamped to the epoch");
    }

    #[test]
    fn chrome_trace_renders_valid_structure() {
        let spans = vec![SpanRecord {
            name: "a\"b\\c".to_string(),
            args: vec![("k".to_string(), "v\n1".to_string())],
            start_ns: 1_234_567,
            dur_ns: 89_001,
            tid: 2,
            depth: 0,
            trace_id: 0,
            span_id: 1,
            parent_id: 0,
        }];
        let json = chrome_trace(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"a\\\"b\\\\c\""), "{json}");
        assert!(json.contains("\"ts\":1234.567"), "{json}");
        assert!(json.contains("\"dur\":89.001"), "{json}");
        assert!(json.contains("\"k\":\"v\\n1\""), "{json}");
        // Balanced braces/brackets outside strings — cheap well-formedness
        // proxy exercised properly by the CI python json.load step.
        assert_eq!(chrome_trace(&[]), "{\"traceEvents\":[]}");
    }

    #[test]
    fn spans_nest_by_id_and_carry_the_trace() {
        let _guard = test_guard();
        set_enabled(false);
        drain_spans();
        // An active trace collects spans even with metrics disabled.
        let ctx = TraceCtx::new();
        set_trace(Some(ctx));
        {
            let _outer = crate::span!("outer");
            {
                let _inner = crate::span!("inner");
            }
        }
        set_trace(None);
        {
            let _after = crate::span!("after"); // trace gone, obs off: dropped
        }
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(outer.trace_id, ctx.trace_id);
        assert_eq!(inner.trace_id, ctx.trace_id);
        assert_ne!(outer.span_id, 0);
        assert_eq!(inner.parent_id, outer.span_id, "nesting is recorded by id");
        assert_eq!(outer.parent_id, 0, "no attach point: outer is a root");
    }

    #[test]
    fn thread_roots_attach_under_the_trace_parent() {
        let _guard = test_guard();
        set_enabled(false);
        drain_spans();
        let mut ctx = TraceCtx::new();
        ctx.parent_span = 77;
        set_trace(Some(ctx));
        std::thread::spawn(|| {
            let _s = crate::span!("worker.root");
        })
        .join()
        .unwrap();
        set_trace(None);
        let spans = drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent_id, 77, "thread roots join the request tree");
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn take_trace_spans_leaves_other_records() {
        let _guard = test_guard();
        set_enabled(true);
        drain_spans();
        {
            let _plain = crate::span!("plain");
        }
        let ctx = TraceCtx::new();
        set_trace(Some(ctx));
        {
            let _traced = crate::span!("traced");
        }
        set_trace(None);
        let traced = take_trace_spans(ctx.trace_id);
        let rest = drain_spans();
        set_enabled(false);
        assert_eq!(traced.len(), 1);
        assert_eq!(traced[0].name, "traced");
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].name, "plain");
        assert_eq!(rest[0].trace_id, 0);
    }

    #[test]
    fn inject_spans_remints_ids_and_rebases_time() {
        let _guard = test_guard();
        set_enabled(true);
        drain_spans();
        // Burn local ids so the re-minted ids cannot collide with the
        // shipped fragment's dense 1-based ids.
        for _ in 0..4 {
            let _s = crate::span!("local.warmup");
        }
        drain_spans();
        // A "worker-shipped" fragment: dense local ids, zero-based time.
        let shipped = vec![
            SpanRecord {
                name: "walk.shard0".to_string(),
                args: vec![],
                start_ns: 0,
                dur_ns: 50,
                tid: 1,
                depth: 0,
                trace_id: 9,
                span_id: 1,
                parent_id: 0,
            },
            SpanRecord {
                name: "walk.inner".to_string(),
                args: vec![],
                start_ns: 10,
                dur_ns: 20,
                tid: 1,
                depth: 1,
                trace_id: 9,
                span_id: 2,
                parent_id: 1,
            },
        ];
        inject_spans(shipped, 42, 1_000);
        let spans = drain_spans();
        set_enabled(false);
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "walk.shard0").unwrap();
        let inner = spans.iter().find(|s| s.name == "walk.inner").unwrap();
        assert_eq!(root.parent_id, 42, "external parents rewire to the attach point");
        assert_eq!(inner.parent_id, root.span_id, "internal links follow the remap");
        assert_ne!(root.span_id, 1, "ids are re-minted in this process");
        assert_eq!(root.start_ns, 1_000);
        assert_eq!(inner.start_ns, 1_010);
        assert_eq!(root.tid, inner.tid, "one incoming tid stays one lane");
    }

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let a = TraceCtx::new();
        let b = TraceCtx::new();
        assert_ne!(a.trace_id, 0);
        assert_ne!(b.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
    }
}
