//! Hierarchical timed spans with Chrome-trace export.
//!
//! A [`Span`] is an RAII guard: [`Span::start`] (usually via the
//! [`span!`](crate::span!) macro) stamps a start time and the calling
//! thread's current nesting depth; dropping it records a completed
//! [`SpanRecord`] into the process-global collector. While
//! [`enabled`](crate::enabled) is off, `Span::start` returns an inert
//! guard after one branch — no clock read, no allocation.
//!
//! Spans are meant for *coarse* phases (plan/spill/spawn/walk/merge,
//! one per shard or query) — per-event costs belong in counters. The
//! collector is therefore a single mutex-guarded vector; records land
//! in completion order, and nesting is recoverable from
//! `(tid, start_ns, dur_ns, depth)`.
//!
//! [`chrome_trace`] renders records as Chrome-trace JSON (the
//! `chrome://tracing` / Perfetto `traceEvents` format) — the payload
//! behind the CLI's `--trace FILE` flag.

use std::cell::Cell;
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A completed span observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, dot-separated by convention (`"distributed.spill"`).
    pub name: String,
    /// Key/value annotations, in declaration order.
    pub args: Vec<(String, String)>,
    /// Start offset in nanoseconds from the process obs epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small dense per-thread id (assigned on each thread's first span).
    pub tid: u64,
    /// Nesting depth on its thread at start time (0 = top level).
    pub depth: u32,
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process obs epoch (first observation).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn thread_id() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static SPANS: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

fn push(record: SpanRecord) {
    collector().lock().unwrap_or_else(|p| p.into_inner()).push(record);
}

/// Takes (and clears) every span recorded so far, in completion order.
pub fn drain_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *collector().lock().unwrap_or_else(|p| p.into_inner()))
}

/// Records a span that was measured externally (e.g. a worker-reported
/// wall time the coordinator re-emits): it ends now and lasted
/// `dur_ns`. No-op while disabled.
pub fn record_span(name: &str, dur_ns: u64, args: &[(&str, String)]) {
    if !crate::enabled() {
        return;
    }
    let end = now_ns();
    push(SpanRecord {
        name: name.to_string(),
        args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        start_ns: end.saturating_sub(dur_ns),
        dur_ns,
        tid: thread_id(),
        depth: DEPTH.with(|d| d.get()),
    });
}

/// An RAII span guard; see the [module docs](self).
#[must_use = "a span measures until dropped — bind it with `let _span = …`"]
pub struct Span {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    args: Vec<(String, String)>,
    start_ns: u64,
    depth: u32,
}

impl Span {
    /// Starts a span (inert when disabled — one branch, nothing else).
    pub fn start(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { inner: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Span { inner: Some(ActiveSpan { name, args: Vec::new(), start_ns: now_ns(), depth }) }
    }

    /// Attaches a key/value annotation (formatted only when live).
    pub fn arg(mut self, key: &str, value: impl Display) -> Span {
        if let Some(active) = &mut self.inner {
            active.args.push((key.to_string(), value.to_string()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            push(SpanRecord {
                name: active.name.to_string(),
                args: active.args,
                start_ns: active.start_ns,
                dur_ns: now_ns().saturating_sub(active.start_ns),
                tid: thread_id(),
                depth: active.depth,
            });
        }
    }
}

/// Starts a [`Span`] guard: `span!("walk.shard")` or
/// `span!("walk.shard", shard = 3, events = n)`. Bind the result —
/// the span measures until the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::start($name)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::span::Span::start($name)$(.arg(stringify!($key), &$val))+
    };
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders records as Chrome-trace JSON: complete (`"ph":"X"`) events
/// with microsecond timestamps, one `tid` per recording thread, span
/// args under `"args"`. Load the output in `chrome://tracing` or
/// Perfetto.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&s.name, &mut out);
        out.push_str("\",\"cat\":\"tnm\",\"ph\":\"X\"");
        out.push_str(&format!(
            ",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{}",
            s.start_ns / 1000,
            s.start_ns % 1000,
            s.dur_ns / 1000,
            s.dur_ns % 1000,
            s.tid
        ));
        out.push_str(",\"args\":{");
        for (k, v) in &s.args {
            out.push('"');
            escape_json(k, &mut out);
            out.push_str("\":\"");
            escape_json(v, &mut out);
            out.push_str("\",");
        }
        out.push_str(&format!("\"depth\":\"{}\"}}}}", s.depth));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_enabled, test_guard};

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_guard();
        set_enabled(false);
        drain_spans();
        {
            let _s = crate::span!("quiet", k = 1);
        }
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn nested_spans_carry_depth_and_contain_children() {
        let _guard = test_guard();
        set_enabled(true);
        drain_spans();
        {
            let _outer = crate::span!("outer", job = 7);
            {
                let _inner = crate::span!("inner");
            }
        }
        let spans = drain_spans();
        set_enabled(false);
        assert_eq!(spans.len(), 2);
        let inner = &spans[0]; // completion order: inner drops first
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(outer.args, vec![("job".to_string(), "7".to_string())]);
    }

    #[test]
    fn sibling_threads_get_distinct_tids() {
        let _guard = test_guard();
        set_enabled(true);
        drain_spans();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = crate::span!("worker", idx = i);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let spans = drain_spans();
        set_enabled(false);
        assert_eq!(spans.len(), 4);
        let mut tids: Vec<_> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "each thread has its own tid");
    }

    #[test]
    fn synthetic_spans_end_now() {
        let _guard = test_guard();
        set_enabled(true);
        drain_spans();
        record_span("distributed.walk", 1_000_000, &[("shard", "3".to_string())]);
        let spans = drain_spans();
        set_enabled(false);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].dur_ns, 1_000_000);
        assert_eq!(spans[0].args[0], ("shard".to_string(), "3".to_string()));
        assert!(spans[0].start_ns <= now_ns(), "start is clamped to the epoch");
    }

    #[test]
    fn chrome_trace_renders_valid_structure() {
        let spans = vec![SpanRecord {
            name: "a\"b\\c".to_string(),
            args: vec![("k".to_string(), "v\n1".to_string())],
            start_ns: 1_234_567,
            dur_ns: 89_001,
            tid: 2,
            depth: 0,
        }];
        let json = chrome_trace(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"a\\\"b\\\\c\""), "{json}");
        assert!(json.contains("\"ts\":1234.567"), "{json}");
        assert!(json.contains("\"dur\":89.001"), "{json}");
        assert!(json.contains("\"k\":\"v\\n1\""), "{json}");
        // Balanced braces/brackets outside strings — cheap well-formedness
        // proxy exercised properly by the CI python json.load step.
        assert_eq!(chrome_trace(&[]), "{\"traceEvents\":[]}");
    }
}
