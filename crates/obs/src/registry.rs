//! Named metrics: atomic counters, peak-tracking gauges, and
//! log-bucketed histograms, interned in a [`Registry`].
//!
//! Handles returned by [`Registry::counter`] / [`gauge`](Registry::gauge)
//! / [`histogram`](Registry::histogram) are `Arc`s to the live atomics:
//! hot paths resolve a name once, keep the handle, and update it
//! lock-free. [`Registry::snapshot`] freezes everything into sorted
//! [`BTreeMap`]s so two snapshots of the same state are identical —
//! including their [`Snapshot::to_prometheus`] text rendering — and
//! [`Registry::apply`] merges a snapshot back into a live registry
//! (how the distributed coordinator folds worker-side metrics in).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX` (bucket `i ≥ 1` spans `[2^(i-1), 2^i - 1]`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index a value lands in: `0` for zero, otherwise
/// `64 - leading_zeros` (so 1 → 1, 2..=3 → 2, 4..=7 → 3, …).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The largest value bucket `index` admits (`u64::MAX` for the last).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level with automatic peak tracking: every update also
/// `fetch_max`es the high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// Sets the level to `value`.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
        self.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Lowers the level by `n` (saturating via wrapping semantics is
    /// the caller's responsibility; levels never go negative in
    /// correct pairing).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark since creation (or the last reset).
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram: 65 atomic buckets plus running count and
/// sum. Built for nanosecond latencies — relative bucket error is at
/// most 2×, which is plenty to separate a 2 µs verify from a 2 ms
/// spill.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n != 0).then_some((i as u8, n))
            })
            .collect();
        HistogramSnapshot { count: self.count(), sum: self.sum(), buckets }
    }
}

/// Frozen gauge state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaugeSnapshot {
    /// Level at snapshot time.
    pub value: u64,
    /// High-water mark at snapshot time.
    pub peak: u64,
}

/// Frozen histogram state: total count/sum plus the *sparse* sorted
/// list of non-empty `(bucket index, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Non-empty buckets as `(index, count)`, index-ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 with no data.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the highest non-empty bucket — a cheap proxy for
    /// the maximum observation (within 2×).
    pub fn max_bound(&self) -> u64 {
        self.buckets.last().map_or(0, |&(i, _)| bucket_upper_bound(i as usize))
    }

    /// Folds `other` into `self` bucket-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for &(i, n) in &other.buckets {
            *merged.entry(i).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// The approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of
    /// the bucket holding the ⌈q·count⌉-th observation, so within the
    /// 2× bucket resolution. Returns 0 with no data.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i as usize);
            }
        }
        self.max_bound()
    }

    /// What happened since `baseline` (an earlier snapshot of the same
    /// histogram): counts and bucket tallies subtract saturating, so a
    /// reset between the two degrades to "everything is new".
    pub fn delta(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let base: BTreeMap<u8, u64> = baseline.buckets.iter().copied().collect();
        let buckets: Vec<(u8, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let d = n.saturating_sub(base.get(&i).copied().unwrap_or(0));
                (d != 0).then_some((i, d))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
            buckets,
        }
    }
}

/// A deterministic frozen view of a [`Registry`]: sorted maps, so
/// equality and text rendering are stable for identical state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge value/peak pairs by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` in: counters add, gauges keep the component-wise
    /// maximum (they are levels, not flows), histograms merge
    /// bucket-wise.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, g) in &other.gauges {
            let e = self.gauges.entry(name.clone()).or_default();
            e.value = e.value.max(g.value);
            e.peak = e.peak.max(g.peak);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// What happened since `baseline` (an earlier snapshot of the same
    /// registry): counters and histograms subtract saturating (zero
    /// deltas are dropped), gauges keep their current value/peak — they
    /// are levels, not flows. The serve time-series sampler and the
    /// per-query `--profile` summary are both built on this.
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(name, &v)| {
                let d = v.saturating_sub(baseline.counters.get(name).copied().unwrap_or(0));
                (d != 0).then(|| (name.clone(), d))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(name, h)| {
                let d = h.delta(baseline.histograms.get(name).unwrap_or(&Default::default()));
                (d.count != 0).then(|| (name.clone(), d))
            })
            .collect();
        Snapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// The Prometheus metric name for a dotted tnm name: `.`/`-` (and
    /// any other non-alphanumeric byte) become `_`, with a leading `_`
    /// when the name would otherwise start with a digit.
    pub fn prometheus_name(name: &str) -> String {
        let mut out = String::with_capacity(name.len() + 1);
        if name.starts_with(|c: char| c.is_ascii_digit()) {
            out.push('_');
        }
        out.extend(name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }));
        out
    }

    /// Renders Prometheus text exposition: every family carries
    /// `# HELP` (the original dotted tnm name) and `# TYPE` lines;
    /// names are escaped via [`Snapshot::prometheus_name`]; gauges emit
    /// a `_peak` companion; histograms emit cumulative
    /// `_bucket{le="…"}` series plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = Snapshot::prometheus_name(name);
            out.push_str(&format!("# HELP {n} tnm counter {name}\n"));
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, g) in &self.gauges {
            let n = Snapshot::prometheus_name(name);
            out.push_str(&format!("# HELP {n} tnm gauge {name}\n"));
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", g.value));
            out.push_str(&format!("# HELP {n}_peak tnm gauge {name} high-water mark\n"));
            out.push_str(&format!("# TYPE {n}_peak gauge\n{n}_peak {}\n", g.peak));
        }
        for (name, h) in &self.histograms {
            let n = Snapshot::prometheus_name(name);
            out.push_str(&format!("# HELP {n} tnm histogram {name}\n"));
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for &(i, count) in &h.buckets {
                cumulative += count;
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_upper_bound(i as usize)
                ));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

/// An interning store of named metrics. Lookups take a read lock and
/// return `Arc` handles; updates through handles are lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn intern<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("obs registry lock").get(name) {
        return Arc::clone(found);
    }
    let mut w = map.write().expect("obs registry lock");
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Freezes every metric into a deterministic [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("obs registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("obs registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), GaugeSnapshot { value: v.get(), peak: v.peak() }))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("obs registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot { counters, gauges, histograms }
    }

    /// Merges a frozen snapshot into this live registry: counters add,
    /// gauges `fetch_max`, histograms add bucket-wise. This is how the
    /// distributed coordinator folds worker-side metrics in.
    pub fn apply(&self, snap: &Snapshot) {
        for (name, v) in &snap.counters {
            self.counter(name).add(*v);
        }
        for (name, g) in &snap.gauges {
            let gauge = self.gauge(name);
            gauge.value.fetch_max(g.value, Ordering::Relaxed);
            gauge.peak.fetch_max(g.peak, Ordering::Relaxed);
        }
        for (name, h) in &snap.histograms {
            let hist = self.histogram(name);
            hist.count.fetch_add(h.count, Ordering::Relaxed);
            hist.sum.fetch_add(h.sum, Ordering::Relaxed);
            for &(i, n) in &h.buckets {
                hist.buckets[i as usize].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Drops every metric. Outstanding handles stay usable but are
    /// detached — later lookups of the same name mint fresh atomics.
    /// Test isolation only; production code never resets.
    pub fn reset(&self) {
        self.counters.write().expect("obs registry lock").clear();
        self.gauges.write().expect("obs registry lock").clear();
        self.histograms.write().expect("obs registry lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Exact boundary sweep: 0 is its own bucket, then [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for i in 1..64 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert_eq!(bucket_upper_bound(i), hi);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        assert_eq!(bucket_upper_bound(0), 0);
    }

    #[test]
    fn histogram_records_land_in_their_buckets() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.sum, 2034u64.wrapping_add(u64::MAX));
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1), (11, 1), (64, 1)],
            "0→b0, 1→b1, 2,3→b2, 4→b3, 1000→b10, 1024→b11, MAX→b64"
        );
        assert_eq!(snap.max_bound(), u64::MAX);
    }

    #[test]
    fn gauge_tracks_peak_across_set_add_sub() {
        let g = Gauge::default();
        g.set(10);
        g.add(5);
        g.sub(12);
        assert_eq!(g.get(), 3);
        assert_eq!(g.peak(), 15);
        g.set(4);
        assert_eq!(g.peak(), 15, "peak survives lower sets");
    }

    #[test]
    fn snapshots_are_deterministic_and_sorted() {
        let r = Registry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.gauge("m.mid").set(7);
        r.histogram("h.lat").record(100);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.to_prometheus(), s2.to_prometheus());
        let names: Vec<_> = s1.counters.keys().cloned().collect();
        assert_eq!(names, vec!["a.first", "z.last"], "BTreeMap iteration is sorted");
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_sanitized() {
        let r = Registry::new();
        r.counter("cache.index-hits").add(3);
        let h = r.histogram("lat.ns");
        h.record(1); // bucket 1, le=1
        h.record(2); // bucket 2, le=3
        h.record(3); // bucket 2
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("cache_index_hits 3"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3"), "cumulative: {text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_ns_sum 6"), "{text}");
        assert!(text.contains("lat_ns_count 3"), "{text}");
    }

    /// Golden test for the exposition format: exact output, including
    /// `# HELP`/`# TYPE` lines, dot escaping, and the digit-prefix
    /// guard. Dashboards scrape this text — any change here is a
    /// contract change.
    #[test]
    fn prometheus_exposition_matches_golden() {
        let r = Registry::new();
        r.counter("serve.queries").add(3);
        r.gauge("shard.resident-events").set(9);
        let h = r.histogram("2fast.lat.ns");
        h.record(1);
        h.record(3);
        let text = r.snapshot().to_prometheus();
        let golden = "\
# HELP serve_queries tnm counter serve.queries
# TYPE serve_queries counter
serve_queries 3
# HELP shard_resident_events tnm gauge shard.resident-events
# TYPE shard_resident_events gauge
shard_resident_events 9
# HELP shard_resident_events_peak tnm gauge shard.resident-events high-water mark
# TYPE shard_resident_events_peak gauge
shard_resident_events_peak 9
# HELP _2fast_lat_ns tnm histogram 2fast.lat.ns
# TYPE _2fast_lat_ns histogram
_2fast_lat_ns_bucket{le=\"1\"} 1
_2fast_lat_ns_bucket{le=\"3\"} 2
_2fast_lat_ns_bucket{le=\"+Inf\"} 2
_2fast_lat_ns_sum 4
_2fast_lat_ns_count 2
";
        assert_eq!(text, golden);
    }

    #[test]
    fn snapshot_delta_subtracts_flows_and_keeps_levels() {
        let r = Registry::new();
        r.counter("c.flow").add(5);
        r.counter("c.idle").add(2);
        r.gauge("g.level").set(10);
        r.histogram("h.lat").record(2);
        let base = r.snapshot();
        r.counter("c.flow").add(3);
        r.gauge("g.level").set(4);
        r.histogram("h.lat").record(2);
        r.histogram("h.lat").record(1000);
        let d = r.snapshot().delta(&base);
        assert_eq!(d.counters.get("c.flow"), Some(&3));
        assert_eq!(d.counters.get("c.idle"), None, "zero deltas are dropped");
        assert_eq!(d.gauges["g.level"].value, 4, "gauges keep the current level");
        assert_eq!(d.gauges["g.level"].peak, 10);
        let h = &d.histograms["h.lat"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1002);
        assert_eq!(h.buckets, vec![(2, 1), (10, 1)]);
        // A reset between snapshots saturates instead of wrapping.
        let shrunk = Snapshot::default().delta(&base);
        assert!(shrunk.counters.is_empty());
    }

    #[test]
    fn percentiles_resolve_to_bucket_upper_bounds() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().percentile(0.5), 0);
        for _ in 0..98 {
            h.record(3); // bucket 2, le=3
        }
        h.record(1000); // bucket 10, le=1023
        h.record(1001);
        let snap = h.snapshot();
        assert_eq!(snap.percentile(0.5), 3);
        assert_eq!(snap.percentile(0.99), 1023);
        assert_eq!(snap.percentile(1.0), 1023);
        assert_eq!(snap.percentile(0.0), 3, "q=0 clamps to the first observation");
    }

    #[test]
    fn apply_merges_worker_snapshots_into_a_live_registry() {
        let worker = Registry::new();
        worker.counter("engine.events_scanned").add(40);
        worker.gauge("shard.resident_events").set(900);
        worker.histogram("verify.ns").record(512);

        let coordinator = Registry::new();
        coordinator.counter("engine.events_scanned").add(2);
        coordinator.gauge("shard.resident_events").set(100);
        coordinator.histogram("verify.ns").record(64);

        coordinator.apply(&worker.snapshot());
        let merged = coordinator.snapshot();
        assert_eq!(merged.counters["engine.events_scanned"], 42);
        assert_eq!(merged.gauges["shard.resident_events"].peak, 900, "gauges max, not add");
        assert_eq!(merged.histograms["verify.ns"].count, 2);
        assert_eq!(merged.histograms["verify.ns"].buckets, vec![(7, 1), (10, 1)]);
    }

    #[test]
    fn snapshot_merge_matches_apply_semantics() {
        let a = Registry::new();
        a.counter("c").add(1);
        a.histogram("h").record(10);
        let b = Registry::new();
        b.counter("c").add(2);
        b.histogram("h").record(20);
        let mut left = a.snapshot();
        left.merge(&b.snapshot());
        a.apply(&b.snapshot());
        assert_eq!(left, a.snapshot());
    }
}
