//! Model comparison: reproduce the paper's Figure 1 validity matrix and
//! show how the same dataset yields different motif spectra under each
//! of the four models.
//!
//! Run with: `cargo run --release --example model_comparison`

use temporal_motifs::analysis::experiments::fig1;
use temporal_motifs::datasets::{generate, DatasetSpec};
use temporal_motifs::prelude::*;

fn main() {
    // --- Figure 1: the validity matrix --------------------------------
    let fig = fig1::run();
    print!("{}", fig.render());
    assert!(fig.matches_expected, "reconstruction must match the paper");

    // --- Spectra under each model on a message network ----------------
    let mut spec = DatasetSpec::sms_copenhagen();
    spec.num_events = 4_000; // keep the demo snappy
    let graph = generate(&spec, 7);
    println!(
        "\nsynthetic {}: {} events, {} nodes",
        spec.name,
        graph.num_events(),
        graph.num_nodes()
    );

    let delta_c = 1500;
    let delta_w = 3000;
    println!("\nTop-5 3n3e motifs per model (dC={delta_c}s, dW={delta_w}s):");
    for model in MotifModel::all_four(delta_c, delta_w) {
        let cfg = EnumConfig::for_model(&model, 3, 3).exact_nodes(3);
        let counts = count_motifs(&graph, &cfg);
        println!("\n  {model}");
        println!("    total: {} instances, {} types", counts.total(), counts.num_signatures());
        for (signature, n) in counts.top_k(5) {
            println!("    {signature}  x{n}");
        }
    }

    // --- What each aspect costs: toggle restrictions one at a time ----
    println!("\nAblation on the same graph (3n3e, dC={delta_c}s):");
    let base = EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_c(delta_c));
    let vanilla = count_motifs(&graph, &base).total();
    let consecutive = count_motifs(&graph, &base.clone().with_consecutive(true)).total();
    let induced = count_motifs(&graph, &base.clone().with_static_induced(true)).total();
    let constrained = count_motifs(&graph, &base.clone().with_constrained(true)).total();
    println!("  vanilla                      {vanilla}");
    println!("  + consecutive events [11]    {consecutive}");
    println!("  + static inducedness [13,14] {induced}");
    println!("  + constrained dynamic [13]   {constrained}");
}
