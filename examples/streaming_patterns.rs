//! Streaming motif counting with `tnm serve` — a resident counting
//! service holding the graph in memory, answering [`Query`] requests,
//! and keeping subscription counts live under event appends in
//! O(new events) per batch instead of a recount.
//!
//! The daemon here runs in-process on a background thread (the same
//! code path as the `tnm serve` CLI verb); the client talks to it over
//! a real TCP socket with the framed wire protocol.
//!
//! Run with: `cargo run --release --example streaming_patterns`

use temporal_motifs::prelude::*;

fn main() {
    // A synthetic message network, streamed in two halves: the history
    // we load up front, and a live tail we append wave by wave.
    let mut spec = DatasetSpec::by_name("CollegeMsg").expect("known dataset");
    spec.num_events = 2000;
    let graph = generate(&spec, 42);
    let all = graph.events();
    let (history, live_tail) = all.split_at(all.len() - 300);

    // Bind on a free port and run the accept loop on a background
    // thread — exactly what `tnm serve` does on the current thread.
    let server = MotifServer::bind("127.0.0.1:0").expect("bind").spawn();
    println!("serving on {}", server.addr());

    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let (events, nodes) = client.load_graph("college", history, 0).expect("load");
    println!("loaded `college`: {events} events over {nodes} nodes");

    // --- Ad-hoc queries against the resident graph ---------------------
    // The same Query values the CLI `count` verb builds; the resident
    // graph keeps its window index warm, so the second query pays no
    // index rebuild.
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(3000));
    let query = Query::Report { cfg: cfg.clone(), engine: EngineKind::Auto, threads: 4 };
    let QueryResponse::Report(report) = client.query("college", &query).expect("query") else {
        panic!("report queries answer with reports")
    };
    println!(
        "ad-hoc query: {} instances across {} motif types (engine {})",
        report.counts.total(),
        report.counts.num_signatures(),
        report.engine
    );

    // --- A live subscription -------------------------------------------
    // Subscriptions ride the stream-eligible fast path: counts advance
    // incrementally from the ΔW tail alone on every append.
    let (sub, initial) = client.subscribe("college", &cfg).expect("subscribe");
    println!("subscription #{sub}: {} instances at load time", initial.total());

    // Stream the live tail in as uneven waves, as a collector would.
    let mut live = initial;
    for wave in live_tail.chunks(77) {
        let ack = client.append_events("college", wave).expect("append");
        let (_, counts) =
            ack.subscriptions.into_iter().find(|(id, _)| *id == sub).expect("our subscription");
        println!(
            "  +{} events -> {} resident, live count {}",
            wave.len(),
            ack.total_events,
            counts.total()
        );
        live = counts;
    }

    // The incrementally-maintained counts are bit-identical to counting
    // the full graph from scratch — the service's core guarantee.
    let recount = EngineKind::Stream.count(&graph, &cfg, 1);
    assert_eq!(live, recount, "incremental == from-scratch recount");
    println!("live counts match a from-scratch recount: {} instances", live.total());

    // Queries see the appended events too (the graph rebuilds lazily,
    // subscriptions never do).
    let query = Query::Count { cfg: cfg.clone(), engine: EngineKind::Windowed, threads: 4 };
    let QueryResponse::Counts(counts) = client.query("college", &query).expect("query") else {
        panic!("count queries answer with counts")
    };
    assert_eq!(counts, recount, "queries observe appends");

    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} queries, {} appended events, {} graph(s) resident",
        stats.queries,
        stats.appends,
        stats.graphs.len()
    );

    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
    println!("daemon shut down cleanly");
}
