//! Streaming event-pattern matching — Song et al.'s [12] setting: find
//! partially-ordered, labelled patterns over a live graph stream with a
//! ΔW window, without indexing the whole history.
//!
//! Run with: `cargo run --release --example streaming_patterns`

use temporal_motifs::motifs::partial_order::PartialOrder;
use temporal_motifs::motifs::pattern::{matcher::StreamingMatcher, EventPattern, PatternEdge};
use temporal_motifs::prelude::*;

fn main() {
    // A service mesh trace: frontends (label 0) call backends (label 1),
    // which fan out to databases (label 2).
    //   nodes 0-1: frontends, 2-3: backends, 4-5: databases.
    let node_labels = vec![0u32, 0, 1, 1, 2, 2];
    let graph = TemporalGraphBuilder::new()
        .event_with_duration(0, 2, 10, 5) // frontend 0 -> backend 2
        .event_with_duration(2, 4, 12, 30) // backend 2 -> db 4 (slow!)
        .event_with_duration(2, 5, 14, 3) // backend 2 -> db 5
        .event_with_duration(1, 3, 50, 2) // frontend 1 -> backend 3
        .event_with_duration(3, 4, 52, 2) // backend 3 -> db 4
        .event_with_duration(0, 2, 300, 4) // next request wave
        .event_with_duration(2, 4, 309, 40)
        .build()
        .expect("valid trace");

    // --- Pattern 1: "request fan-out" with partial ordering ------------
    // Edges: e0 = frontend->backend, then e1 = backend->dbA and
    // e2 = backend->dbB in EITHER order (partial order: e0 before both).
    let mut edges = vec![
        PatternEdge::new(0, 1), // frontend -> backend
        PatternEdge::new(1, 2), // backend -> db A
        PatternEdge::new(1, 3), // backend -> db B
    ];
    edges[0].src_label = Some(0);
    edges[0].dst_label = Some(1);
    edges[1].dst_label = Some(2);
    edges[2].dst_label = Some(2);
    let order = PartialOrder::from_constraints(3, &[(0, 1), (0, 2)]).expect("acyclic");
    let fanout = EventPattern::new(edges, 4, order, 60).expect("valid pattern");
    println!(
        "fan-out pattern: {} edges, {} linear extensions, ΔW={}s",
        fanout.len(),
        fanout.order.count_linear_extensions(),
        fanout.delta_w
    );

    let mut matcher = StreamingMatcher::new(fanout);
    let mut found = 0;
    for (i, e) in graph.events().iter().enumerate() {
        for m in matcher.process(i as u32, e, Some(&node_labels)) {
            found += 1;
            println!(
                "  match: frontend {} -> backend {} -> dbs {},{} in {}s",
                m.bindings[0],
                m.bindings[1],
                m.bindings[2],
                m.bindings[3],
                m.t_last - m.t_first
            );
        }
    }
    // Only the first wave fans out to two databases; the pattern is
    // symmetric in (dbA, dbB), so both embeddings of that wave match.
    assert_eq!(found, 2, "one fan-out wave, two symmetric embeddings");

    // --- Pattern 2: durations as edge labels (paper Section 4.2) -------
    // Find frontend->backend->db chains where the db call is slow
    // (duration > 20 s): a latency root-cause query.
    let mut slow_edges = vec![PatternEdge::new(0, 1), PatternEdge::new(1, 2)];
    slow_edges[0].src_label = Some(0);
    slow_edges[1].dst_label = Some(2);
    // Express "slow" by bounding the FAST case out: max_duration on the
    // backend call keeps it snappy, and we post-filter the db duration.
    slow_edges[0].max_duration = Some(10);
    let chain = EventPattern::new(slow_edges, 3, PartialOrder::total(2), 60).expect("valid");
    let mut matcher = StreamingMatcher::new(chain);
    let mut slow = Vec::new();
    for (i, e) in graph.events().iter().enumerate() {
        for m in matcher.process(i as u32, e, Some(&node_labels)) {
            let db_call = graph.event(m.events[1]);
            if db_call.duration > 20 {
                slow.push((m.bindings.clone(), db_call.duration));
            }
        }
    }
    println!("\nslow db chains:");
    for (bindings, duration) in &slow {
        println!("  {:?} with db call of {}s", bindings, duration);
    }
    assert_eq!(slow.len(), 2, "both slow db calls found");

    // --- Bounded state ------------------------------------------------
    println!(
        "\nmatcher state after the stream: {} live partials, {} dropped",
        matcher.live_partials(),
        matcher.dropped_partials
    );
}
