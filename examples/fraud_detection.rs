//! Fraud detection on a transaction network — the motivating scenario of
//! Song et al. [12] and the temporal-cycle line of work (Kumar & Calders
//! [34]) from the paper's Section 4.1: *non-induced* temporal motifs
//! (squares, cycles) in financial networks are fraud indicators, and the
//! strictly induced models would miss them when fraudsters camouflage
//! behind repetitive legitimate transactions.
//!
//! Run with: `cargo run --release --example fraud_detection`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_motifs::motifs::cycles::{count_temporal_cycles, CycleConfig};
use temporal_motifs::prelude::*;

/// Builds a synthetic payment network: heavy legitimate traffic plus a
/// few injected money-laundering rings (temporal cycles completing within
/// an hour).
fn build_payments(seed: u64) -> (TemporalGraph, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TemporalGraphBuilder::new();
    let n = 400u32;
    let mut t = 0i64;
    // Legitimate traffic: random payments, plus repetitive salary-like
    // transfers that fraudsters hide behind.
    for _ in 0..12_000 {
        t += rng.gen_range(5i64..60);
        let u = rng.gen_range(0..n);
        let v = if rng.gen_bool(0.3) { (u + 1) % n } else { rng.gen_range(0..n) };
        if u != v {
            builder.push(Event::new(u, v, t));
        }
    }
    // Injected laundering rings: money hops A -> B -> C -> A within ~30 min.
    let mut injected = 0usize;
    for ring in 0..12 {
        let a = 400 + ring * 3;
        let start = 3_000 + ring as i64 * 20_000;
        builder.push(Event::new(a as u32, (a + 1) as u32, start));
        builder.push(Event::new((a + 1) as u32, (a + 2) as u32, start + 600));
        builder.push(Event::new((a + 2) as u32, a as u32, start + 1500));
        injected += 1;
    }
    (builder.build().expect("valid payments"), injected)
}

fn main() {
    let (graph, injected) = build_payments(99);
    println!(
        "payment network: {} accounts, {} transactions, {} injected rings",
        graph.num_nodes(),
        graph.num_events(),
        injected
    );

    // --- Temporal cycles: the laundering signature --------------------
    let cfg = CycleConfig::new(3, 3_600);
    let cycles = count_temporal_cycles(&graph, &cfg);
    let three_cycles = cycles.get(&3).copied().unwrap_or(0);
    println!("\nsimple temporal 3-cycles within 1h: {three_cycles}");
    assert!(three_cycles >= injected as u64, "must recover the injected rings");

    // --- Streaming pattern matching (Song et al.'s setting) -----------
    // Watch for the cycle pattern A->B, B->C, C->A on-the-fly.
    use temporal_motifs::motifs::pattern::{matcher::StreamingMatcher, EventPattern};
    let pattern =
        EventPattern::totally_ordered(&[(0, 1), (1, 2), (2, 0)], 3_600).expect("valid pattern");
    let mut matcher = StreamingMatcher::new(pattern);
    let mut alerts = 0usize;
    for (i, e) in graph.events().iter().enumerate() {
        let matches = matcher.process(i as u32, e, None);
        for m in &matches {
            alerts += 1;
            if alerts <= 3 {
                println!(
                    "  ALERT: ring {:?} closed at t={} (window {}s)",
                    m.bindings,
                    m.t_last,
                    m.t_last - m.t_first
                );
            }
        }
    }
    println!("streaming matcher raised {alerts} alerts (first 3 shown)");

    // --- Why inducedness matters here (paper Section 4.1) -------------
    // Count temporal triangles with and without static inducedness: the
    // induced count misses rings whose members also transact legally.
    let timing = Timing::only_w(3_600);
    let non_induced =
        count_motifs(&graph, &EnumConfig::new(3, 3).exact_nodes(3).with_timing(timing));
    let induced = count_motifs(
        &graph,
        &EnumConfig::new(3, 3).exact_nodes(3).with_timing(timing).with_static_induced(true),
    );
    let cycle_sig = sig("011220");
    println!(
        "\ntemporal cycle motif {cycle_sig}: non-induced={}  induced={}",
        non_induced.get(cycle_sig),
        induced.get(cycle_sig)
    );
    println!("(Song's non-induced semantics keeps every ring visible;");
    println!(" strict inducedness can drop camouflaged ones — Section 4.1.)");
}
