//! Quickstart: build a temporal network, count motifs under all four
//! models, and inspect the event-pair lens.
//!
//! Run with: `cargo run --example quickstart`

use temporal_motifs::prelude::*;

fn main() {
    // A small communication trace: two people chat, a third joins,
    // and the message gets forwarded around.
    let graph = TemporalGraphBuilder::new()
        .event(0, 1, 0) // 0 messages 1
        .event(1, 0, 20) // 1 replies
        .event(0, 1, 35) // 0 follows up
        .event(1, 2, 60) // 1 forwards to 2
        .event(2, 0, 75) // 2 reaches back to 0
        .event(0, 2, 90) // 0 answers 2
        .event(2, 3, 400) // much later, 2 contacts 3
        .build()
        .expect("valid events");

    println!("network: {} nodes, {} events", graph.num_nodes(), graph.num_events());

    // --- Count 3-event, up-to-3-node motifs under each model ---------
    let delta_c = 60; // inter-event bound (Kovanen, Hulovatyy)
    let delta_w = 120; // whole-motif window (Song, Paranjape)
    for model in MotifModel::all_four(delta_c, delta_w) {
        let cfg = EnumConfig::for_model(&model, 3, 3);
        let counts = count_motifs(&graph, &cfg);
        println!("\n{model}: {} instances", counts.total());
        for (signature, n) in counts.ranking() {
            let pairs: String = signature
                .event_pair_sequence()
                .into_iter()
                .map(|p| p.map_or('-', |t| t.letter()))
                .collect();
            println!("  {signature}  x{n}   event pairs: {pairs}");
        }
    }

    // --- Check one concrete instance against every model (Figure 1) --
    let candidate = [3u32, 4, 5]; // (1,2,60), (2,0,75), (0,2,90)
    println!("\nvalidity of events {candidate:?}:");
    for verdict in check_against_all(&graph, &candidate, &MotifModel::all_four(delta_c, delta_w)) {
        println!("  {verdict}");
    }

    // --- The Section 4.5 regime analysis ------------------------------
    for (dc, dw) in [(30, 120), (60, 120), (200, 120)] {
        let timing = Timing::both(dc, dw);
        println!("ΔC={dc}s ΔW={dw}s on 3-event motifs: {} regime", timing.regime(3));
    }
}
