//! Communication-network analysis with the event-pair lens — the paper's
//! Section 5.3 workflow on a synthetic message network: which behaviours
//! dominate, how ask-reply patterns surface under the consecutive events
//! restriction, and what the pair-sequence heat map reveals.
//!
//! Run with: `cargo run --release --example communication_analysis`

use temporal_motifs::analysis::heatmap::render_heatmap;
use temporal_motifs::datasets::{generate, DatasetSpec};
use temporal_motifs::prelude::*;

fn main() {
    let mut spec = DatasetSpec::college_msg();
    spec.num_events = 8_000;
    let graph = generate(&spec, 11);
    println!(
        "synthetic {}: {} nodes, {} events over {} hours",
        spec.name,
        graph.num_nodes(),
        graph.num_events(),
        graph.timespan() / 3600
    );

    // --- Event-pair composition under the two timing extremes ---------
    let configs = [("only-ΔW", Timing::only_w(3000)), ("only-ΔC", Timing::both(1500, 3000))];
    println!("\nevent-pair mix of 3-event motifs:");
    for (label, timing) in configs {
        let counts = count_motifs(&graph, &EnumConfig::new(3, 3).with_timing(timing));
        let pairs = counts.event_pair_counts();
        print!("  {label:>9}: ");
        for (ty, share) in pair_type_ratios(&pairs) {
            print!("{}={:>5.1}%  ", ty.letter(), share * 100.0);
        }
        println!("(total {} pairs)", pairs.total());
    }

    // --- Ask-reply amplification (paper Table 3) ----------------------
    let base = EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_c(1500));
    let vanilla = count_motifs(&graph, &base);
    let restricted = count_motifs(&graph, &base.clone().with_consecutive(true));
    println!(
        "\nconsecutive events restriction keeps {}/{} 3n3e motifs ({:.1}% removed)",
        restricted.total(),
        vanilla.total(),
        (1.0 - restricted.total() as f64 / vanilla.total().max(1) as f64) * 100.0
    );
    let universe = temporal_motifs::motifs::catalog::all_3n3e();
    println!("rank movement of the ask-reply motifs:");
    for s in ["010210", "011210", "012010", "012110"] {
        let m = sig(s);
        let before = vanilla.rank_within(m, &universe).expect("in universe");
        let after = restricted.rank_within(m, &universe).expect("in universe");
        println!(
            "  {s}: #{:>2} -> #{:>2} ({:+})",
            before + 1,
            after + 1,
            before as i64 - after as i64
        );
    }

    // --- Pair-sequence heat map (paper Figure 6) -----------------------
    let counts = count_motifs(&graph, &EnumConfig::new(3, 3).with_timing(Timing::both(2000, 3000)));
    let matrix = counts.pair_sequence_matrix();
    println!();
    print!("{}", render_heatmap(&format!("{} pair sequences", spec.name), &matrix));

    // Message networks should be dominated by repetition/ping-pong
    // sequences (one-to-one conversations) with rare weakly-connected
    // pairs — the paper's Section 5.3 reading.
    use temporal_motifs::motifs::event_pair::EventPairType::*;
    let rp: u64 = [Repetition, PingPong]
        .iter()
        .flat_map(|a| [Repetition, PingPong].iter().map(move |b| matrix[a.index()][b.index()]))
        .sum();
    let total: u64 = matrix.iter().flatten().sum();
    println!(
        "\nR/P-only sequences: {:.1}% of motifs (local one-to-one conversations)",
        rp as f64 / total.max(1) as f64 * 100.0
    );
}
